"""Transactional sessions: stage DML, commit atomically.

A :class:`Transaction` is a *per-session write buffer* (the model of
annotated revision programs: one curation step = one atomic revision of
the belief set). DML executed while a transaction is open is **staged**,
not applied: the statement is prepared through the normal LRU cache and
its parameters are bound eagerly — wrong arity, unsupported value types,
and select-where-DML-belongs all fail *at stage time* — but the belief
store is untouched, so concurrent readers keep seeing the pre-transaction
state.

:meth:`BeliefDBMS.commit_transaction` then applies every staged statement
in order as one atomic unit: under the server's single write-lock
acquisition (readers never observe a partial transaction), with **one**
WAL append and one fsync for the whole commit
(:meth:`~repro.durability.manager.DurabilityManager.log_transaction` —
begin/commit framing, so recovery after ``kill -9`` mid-commit discards
the uncommitted tail rather than replaying half a transaction). If any
statement is rejected mid-apply, the already-applied prefix is rolled
back — the store is rebuilt from the explicit annotations captured at
commit start, the same deterministic rebuild recovery uses — and
:class:`~repro.errors.TransactionAbortedError` is raised; nothing reaches
the WAL.

Reads inside an open transaction go **through the write buffer**: the
session that staged a write sees it in its own selects
(read-your-own-writes), while every other session keeps seeing the last
committed state until the commit lands. This is uniform across the
embedded and remote deployment shapes. Mechanically, :meth:`read_version`
replays the staged statements onto a private copy-on-write fork of the
current pinned snapshot (see :mod:`repro.bdms.dml`); the view is cached
and rebuilt only when the buffer — or the committed epoch underneath
it — changes.

A Transaction object is not internally synchronized; its owner (an
:class:`~repro.api.connection.Connection` or a server
:class:`~repro.server.session.ClientSession`) serializes access.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Sequence

from repro.bdms.dml import apply_compiled
from repro.bdms.result import Result
from repro.core.schema import Value
from repro.errors import TransactionError
from repro.storage.mvcc import Version

if TYPE_CHECKING:  # pragma: no cover — type-only import (avoids a cycle)
    from repro.bdms.bdms import BeliefDBMS, PreparedStatement


class StagedStatement:
    """One staged DML statement: a prepared handle plus its bound rows."""

    __slots__ = ("prepared", "param_rows")

    def __init__(
        self,
        prepared: "PreparedStatement",
        param_rows: Sequence[Sequence[Value]],
    ) -> None:
        self.prepared = prepared
        self.param_rows: list[tuple[Value, ...]] = [
            tuple(row) for row in param_rows
        ]


class Transaction:
    """A per-session write buffer awaiting an atomic commit.

    Obtained from :meth:`BeliefDBMS.begin_transaction`; populated with
    :meth:`stage` / :meth:`stage_batch`; consumed exactly once by
    :meth:`BeliefDBMS.commit_transaction` or :meth:`discard`.
    """

    def __init__(self, db: "BeliefDBMS") -> None:
        self.db = db
        self._staged: list[StagedStatement] = []
        self._state = "open"
        #: Filled by ``commit_transaction``: the WAL entries of the rows
        #: that actually affected the database (for the server's op log).
        self.applied_entries: list[dict[str, Any]] = []
        #: Cached read view (committed snapshot + staged writes) and the
        #: (epoch, statements, rows) key it was built for.
        self._view: Version | None = None
        self._view_key: tuple[int, int, int] | None = None

    # ---------------------------------------------------------------- state

    @property
    def open(self) -> bool:
        return self._state == "open"

    @property
    def state(self) -> str:
        """``"open"``, ``"committed"``, ``"rolled back"``, ``"aborted"``
        (rejected mid-apply and rolled back), or ``"failed"`` (applied in
        memory but the WAL append failed — durability unknown, manager
        fail-stopped)."""
        return self._state

    @property
    def statement_count(self) -> int:
        """Staged statements (an ``executemany`` batch counts once)."""
        return len(self._staged)

    @property
    def row_count(self) -> int:
        """Total staged parameter rows across all statements."""
        return sum(len(s.param_rows) for s in self._staged)

    def _check_open(self) -> None:
        if self._state != "open":
            raise TransactionError(f"transaction is {self._state}, not open")

    # -------------------------------------------------------------- staging

    def stage(
        self, prepared: "PreparedStatement", params: Sequence[Value] = ()
    ) -> Result:
        """Buffer one DML execution; validate eagerly, apply nothing.

        Returns the uniform *staged* Result: ``rowcount`` is ``-1``
        (unknowable before commit) and ``status`` carries the ``STAGED``
        tag, identically embedded and remote.
        """
        return self._stage(prepared, [params])

    def stage_batch(
        self,
        prepared: "PreparedStatement",
        param_rows: Sequence[Sequence[Value]],
    ) -> Result:
        """Buffer an ``executemany`` batch as one staged statement."""
        return self._stage(prepared, param_rows)

    def _stage(
        self,
        prepared: "PreparedStatement",
        param_rows: Sequence[Sequence[Value]],
    ) -> Result:
        start = time.perf_counter()
        self._check_open()
        if prepared.kind == "select":
            raise TransactionError(
                "only DML can be staged in a transaction; selects execute "
                "immediately against the session's read view"
            )
        rows = [tuple(row) for row in param_rows]
        # Eager validation: arity and value types fail here, at stage time,
        # not at commit. bind() is pure — the store is untouched.
        for row in rows:
            prepared.compiled.bind(row)
        self._staged.append(StagedStatement(prepared, rows))
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        return Result(
            kind=prepared.kind,
            rows=[],
            columns=(),
            rowcount=-1,
            status=f"{prepared.kind.upper()} STAGED",
            elapsed_ms=elapsed_ms,
        )

    # ------------------------------------------------------------- read view

    def read_version(self) -> Version:
        """This session's read view: committed snapshot + staged writes.

        Pins the current version, forks it copy-on-write, and replays the
        staged statements (non-strict — exactly the commit-time apply
        semantics, see :mod:`repro.bdms.dml`) onto the private fork. The
        result is wrapped in a :class:`~repro.storage.mvcc.Version` so the
        normal query path — including the per-version sqlite mirror —
        serves it unchanged. Cached until the buffer or the committed
        epoch underneath it changes; never registered with the version
        manager (no other session can pin it).
        """
        self._check_open()
        key = (self.db.versions.epoch, self.statement_count, self.row_count)
        if self._view is not None and self._view_key == key:
            return self._view
        self._drop_view()
        with self.db.read_view() as pinned:
            store = pinned.store.fork_snapshot()
            epoch = pinned.epoch
        for staged in self._staged:
            for row in staged.param_rows:
                apply_compiled(store, staged.prepared.compiled, row)
        self._view = Version(epoch, store)
        self._view_key = key
        return self._view

    def _drop_view(self) -> None:
        if self._view is not None:
            self._view.close()
            self._view = None
            self._view_key = None

    # ------------------------------------------------------------- lifecycle

    def statements(self) -> list[StagedStatement]:
        return list(self._staged)

    def discard(self) -> int:
        """Roll the transaction back: drop every staged statement.

        Nothing was applied, so this is pure bookkeeping; returns how many
        staged statements were discarded.
        """
        self._check_open()
        dropped = len(self._staged)
        self._staged.clear()
        self._drop_view()
        self._state = "rolled back"
        self.db._note_txn("rolled_back")
        return dropped

    def _mark(self, state: str) -> None:
        """Internal: commit_transaction records the terminal state here."""
        self._state = state
        self._drop_view()

    def __repr__(self) -> str:
        return (
            f"<Transaction {self._state}: {self.statement_count} statements, "
            f"{self.row_count} rows>"
        )

"""Per-user sessions: ergonomic helpers over the BDMS.

A :class:`UserSession` pins a user id so collaborative-curation code reads
like the paper's narrative: Carol *reports* a sighting, Bob *doubts* it and
*suggests* an alternative, and *explains* what he thinks Alice believes.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bdms.bdms import BeliefDBMS
from repro.core.paths import User
from repro.core.statements import NEGATIVE, POSITIVE
from repro.core.worlds import BeliefWorld


class UserSession:
    """All operations happen in (or below) this user's belief world."""

    def __init__(self, db: BeliefDBMS, user: Any) -> None:
        self.db = db
        self.uid: User = db.store.resolve_user(user)

    @property
    def name(self) -> str:
        return self.db.store.user_name(self.uid)

    # -- plain content -------------------------------------------------------

    def report(self, relation: str, *values: Any) -> bool:
        """Insert ground content (root world) — a plain SQL insert."""
        return self.db.insert((), relation, values)

    # -- own beliefs ------------------------------------------------------------

    def believes(self, relation: str, *values: Any) -> bool:
        """Insert a positive belief of this user."""
        return self.db.insert((self.uid,), relation, values)

    def doubts(self, relation: str, *values: Any) -> bool:
        """Insert a negative belief (disagreement) of this user."""
        return self.db.insert((self.uid,), relation, values, sign=NEGATIVE)

    def retracts(self, relation: str, *values: Any, sign: Any = POSITIVE) -> bool:
        """Delete one of this user's explicit statements."""
        return self.db.delete((self.uid,), relation, values, sign=sign)

    # -- higher-order beliefs -----------------------------------------------------

    def believes_that(
        self, others: Sequence[Any], relation: str, *values: Any
    ) -> bool:
        """"This user believes that ``others[0]`` believes that ... t+"."""
        path = (self.uid,) + tuple(others)
        return self.db.insert(path, relation, values)

    def doubts_that(
        self, others: Sequence[Any], relation: str, *values: Any
    ) -> bool:
        """"This user believes that ... believes that t is false"."""
        path = (self.uid,) + tuple(others)
        return self.db.insert(path, relation, values, sign=NEGATIVE)

    # -- views --------------------------------------------------------------------

    def world(self) -> BeliefWorld:
        """This user's entailed belief world."""
        return self.db.world((self.uid,))

    def world_about(self, others: Sequence[Any]) -> BeliefWorld:
        """What this user believes the chain ``others`` believes."""
        return self.db.world((self.uid,) + tuple(others))

    def __repr__(self) -> str:
        return f"<UserSession {self.name!r} ({self.uid!r})>"


def session(db: BeliefDBMS, user: Any) -> UserSession:
    """Create a :class:`UserSession` for ``user`` (id or name)."""
    return UserSession(db, user)

"""An interactive BeliefSQL shell.

Accepts BeliefSQL statements plus meta-commands:

    \\users                 registered users
    \\worlds                belief worlds and their sizes
    \\world <u1[.u2...]>    entailed content of one belief world
    \\kripke                the canonical Kripke structure
    \\stats                 |R*|, world count, annotation count
    \\adduser <name>        register a user
    \\explain <select ...>  show the Algorithm 1 translation
    \\help, \\quit

The loop is decoupled from I/O (``feed`` processes one line and returns the
output text), so it is fully unit-testable and scriptable; ``main`` wires it
to stdin.
"""

from __future__ import annotations

from repro.bdms.result import Result
from repro.beliefsql.compiler import compile_select
from repro.beliefsql.parser import parse_beliefsql
from repro.bdms.bdms import BeliefDBMS
from repro.core.paths import format_path
from repro.core.schema import ExternalSchema, sightings_schema
from repro.errors import BeliefDBError

PROMPT = "beliefdb> "


def format_result(result: Result) -> str:
    """Render a typed Result for the shell: column headers, rows, status."""
    if result.kind == "select":
        if not result.rows:
            return "(no rows)"
        lines = []
        if result.columns:
            header = " | ".join(result.columns)
            lines.append("  " + header)
            lines.append("  " + "-" * len(header))
        lines += ["  " + " | ".join(map(str, row)) for row in result.rows]
        n = result.rowcount
        lines.append(f"({n} row{'s'[:n != 1]})")
        return "\n".join(lines)
    if result.kind == "insert":
        return "ok" if result.ok else "rejected"
    return f"{result.rowcount} statement(s) affected"


class BeliefShell:
    """State and line-processing for the REPL."""

    def __init__(self, db: BeliefDBMS | None = None) -> None:
        self.db = db if db is not None else BeliefDBMS(sightings_schema())
        self.done = False

    # -- one line in, text out --------------------------------------------

    def feed(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("\\"):
                return self._meta(line)
            return self._sql(line)
        except BeliefDBError as exc:
            return f"error: {exc}"

    def _sql(self, line: str) -> str:
        return format_result(self.db.execute_sql(line))

    def _meta(self, line: str) -> str:
        command, _, argument = line[1:].partition(" ")
        command = command.lower()
        argument = argument.strip()
        if command in ("quit", "q", "exit"):
            self.done = True
            return "bye"
        if command == "help":
            return __doc__.split("Accepts", 1)[1].split("The loop", 1)[0]
        if command == "users":
            users = self.db.users()
            return "\n".join(f"  {uid}: {name}" for uid, name in users.items()) \
                or "(no users)"
        if command == "adduser":
            if not argument:
                return "usage: \\adduser <name>"
            uid = self.db.add_user(argument)
            return f"registered {argument!r} as uid {uid}"
        if command == "worlds":
            lines = []
            for path in sorted(self.db.store.states(), key=lambda p: (len(p), repr(p))):
                world = self.db.store.entailed_world(path)
                lines.append(
                    f"  {format_path(path)}: {len(world.positives)}+ / "
                    f"{len(world.negatives)}-"
                )
            return "\n".join(lines)
        if command == "world":
            if not argument:
                return "usage: \\world <user[.user...]>"
            path = tuple(p for p in argument.split(".") if p)
            return f"  {self.db.world(list(path))}"
        if command == "kripke":
            return self.db.kripke().describe()
        if command == "stats":
            return self.db.describe()
        if command == "explain":
            if not argument.lower().startswith("select"):
                return "usage: \\explain select ..."
            from repro.query.explain import explain

            statement = parse_beliefsql(argument)
            query = compile_select(statement, self.db.schema)  # type: ignore[arg-type]
            if query is None:
                return "provably empty (contradictory constants)"
            return explain(self.db.store, query, analyze=True).render()
        return f"unknown command \\{command} (try \\help)"

    # -- scripting ------------------------------------------------------------

    def run_script(self, lines: list[str]) -> list[str]:
        """Feed many lines; returns the outputs (stops at \\quit)."""
        outputs = []
        for line in lines:
            outputs.append(self.feed(line))
            if self.done:
                break
        return outputs


def _parse_path(argument: str) -> list:
    """``u1.u2`` -> path list; numeric segments become uids, others names."""
    return [
        int(p) if p.isdigit() else p
        for p in argument.split(".")
        if p
    ]


REMOTE_HELP = """\
 BeliefSQL statements plus meta-commands:

    \\login <name>          authenticate (creates the user if missing)
    \\logout                drop the session user
    \\whoami                session state
    \\path [u1[.u2...]]     show or set the default belief path (. = root)
    \\users                 registered users
    \\adduser <name>        register a user
    \\worlds                belief worlds and their sizes
    \\world <u1[.u2...]>    entailed content of one belief world
    \\kripke                the canonical Kripke structure
    \\stats                 database and server counters
    \\help, \\quit"""


class RemoteShell:
    """The same shell experience against a network belief server.

    Meta-commands mirror :class:`BeliefShell` where the server exposes the
    equivalent introspection op (no remote ``\\explain``), plus the session
    commands listed in :data:`REMOTE_HELP`.
    """

    def __init__(self, client) -> None:
        self.client = client
        self.done = False

    def feed(self, line: str) -> str:
        from repro.server.client import ConnectionLost

        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("\\"):
                return self._meta(line)
            return self._sql(line)
        except ConnectionLost as exc:
            self.done = True
            return f"connection lost: {exc}"
        except BeliefDBError as exc:
            return f"error: {exc}"

    def _sql(self, line: str) -> str:
        payload = self.client.execute_prepared(line)
        return format_result(
            Result.from_wire(payload, self.client.drain(payload))
        )

    def _meta(self, line: str) -> str:
        command, _, argument = line[1:].partition(" ")
        command = command.lower()
        argument = argument.strip()
        if command in ("quit", "q", "exit"):
            self.done = True
            return "bye"
        if command == "help":
            return REMOTE_HELP
        if command == "login":
            if not argument:
                return "usage: \\login <name>"
            info = self.client.login(argument, create=True)
            return (
                f"logged in as {info['user_name']!r} (uid {info['user']}), "
                f"default path {info['default_path']}"
            )
        if command == "logout":
            self.client.logout()
            return "logged out"
        if command == "whoami":
            info = self.client.whoami()
            if info["user"] is None:
                return f"anonymous, default path {info['default_path']}"
            return (
                f"{info['user_name']!r} (uid {info['user']}), "
                f"default path {info['default_path']}"
            )
        if command == "path":
            if not argument:
                info = self.client.whoami()
                return f"default path {info['default_path']}"
            # "." resets to the root world (plain content).
            path = [] if argument == "." else _parse_path(argument)
            info = self.client.set_path(path)
            return f"default path {info['default_path']}"
        if command == "users":
            users = self.client.users()
            return "\n".join(
                f"  {uid}: {name}" for uid, name in users.items()
            ) or "(no users)"
        if command == "adduser":
            if not argument:
                return "usage: \\adduser <name>"
            uid = self.client.add_user(argument)
            return f"registered {argument!r} as uid {uid}"
        if command == "worlds":
            worlds = self.client.worlds()
            return "\n".join(
                f"  {w['label']}: {w['positives']}+ / {w['negatives']}-"
                for w in worlds
            )
        if command == "world":
            path = _parse_path(argument)
            world = self.client.world(path if path else None)
            pos = ", ".join(world["positives"]) or "∅"
            neg = ", ".join(world["negatives"]) or "∅"
            return f"  {world['label']}: +{{{pos}}} -{{{neg}}}"
        if command == "kripke":
            return self.client.kripke()
        if command == "stats":
            stats = self.client.stats()
            server = stats.pop("server", {})
            lines = [f"  {k}: {v}" for k, v in stats.items()]
            lines += [f"  server.{k}: {v}" for k, v in server.items()]
            return "\n".join(lines)
        return f"unknown command \\{command} (try \\help)"

    def run_script(self, lines: list[str]) -> list[str]:
        """Feed many lines; returns the outputs (stops at \\quit)."""
        outputs = []
        for line in lines:
            outputs.append(self.feed(line))
            if self.done:
                break
        return outputs


def remote_main(host: str, port: int, user: str | None = None) -> None:  # pragma: no cover
    from repro.server.client import BeliefClient

    with BeliefClient(host, port) as client:
        shell = RemoteShell(client)
        print(f"Belief DBMS shell — connected to {host}:{port} "
              "(BeliefSQL plus \\help).")
        if user:
            print(shell.feed(f"\\login {user}"))
        while not shell.done:
            try:
                line = input(PROMPT)
            except (EOFError, KeyboardInterrupt):
                print()
                break
            output = shell.feed(line)
            if output:
                print(output)


def main(schema: ExternalSchema | None = None) -> None:  # pragma: no cover
    shell = BeliefShell(
        BeliefDBMS(schema if schema is not None else sightings_schema())
    )
    print("Belief DBMS shell — BeliefSQL plus \\help for meta-commands.")
    while not shell.done:
        try:
            line = input(PROMPT)
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = shell.feed(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()

"""An interactive BeliefSQL shell.

Accepts BeliefSQL statements plus meta-commands:

    \\users                 registered users
    \\worlds                belief worlds and their sizes
    \\world <u1[.u2...]>    entailed content of one belief world
    \\kripke                the canonical Kripke structure
    \\stats                 |R*|, world count, annotation count
    \\adduser <name>        register a user
    \\explain <select ...>  show the Algorithm 1 translation
    \\help, \\quit

The loop is decoupled from I/O (``feed`` processes one line and returns the
output text), so it is fully unit-testable and scriptable; ``main`` wires it
to stdin.
"""

from __future__ import annotations

from repro.beliefsql.compiler import compile_select
from repro.beliefsql.parser import parse_beliefsql
from repro.bdms.bdms import BeliefDBMS
from repro.core.paths import format_path
from repro.core.schema import ExternalSchema, sightings_schema
from repro.errors import BeliefDBError

PROMPT = "beliefdb> "


class BeliefShell:
    """State and line-processing for the REPL."""

    def __init__(self, db: BeliefDBMS | None = None) -> None:
        self.db = db if db is not None else BeliefDBMS(sightings_schema())
        self.done = False

    # -- one line in, text out --------------------------------------------

    def feed(self, line: str) -> str:
        line = line.strip()
        if not line:
            return ""
        try:
            if line.startswith("\\"):
                return self._meta(line)
            return self._sql(line)
        except BeliefDBError as exc:
            return f"error: {exc}"

    def _sql(self, line: str) -> str:
        result = self.db.execute(line)
        if isinstance(result, list):
            if not result:
                return "(no rows)"
            body = "\n".join("  " + " | ".join(map(str, row)) for row in result)
            return f"{body}\n({len(result)} row{'s'[:len(result) != 1]})"
        if isinstance(result, bool):
            return "ok" if result else "rejected"
        return f"{result} statement(s) affected"

    def _meta(self, line: str) -> str:
        command, _, argument = line[1:].partition(" ")
        command = command.lower()
        argument = argument.strip()
        if command in ("quit", "q", "exit"):
            self.done = True
            return "bye"
        if command == "help":
            return __doc__.split("Accepts", 1)[1].split("The loop", 1)[0]
        if command == "users":
            users = self.db.users()
            return "\n".join(f"  {uid}: {name}" for uid, name in users.items()) \
                or "(no users)"
        if command == "adduser":
            if not argument:
                return "usage: \\adduser <name>"
            uid = self.db.add_user(argument)
            return f"registered {argument!r} as uid {uid}"
        if command == "worlds":
            lines = []
            for path in sorted(self.db.store.states(), key=lambda p: (len(p), repr(p))):
                world = self.db.store.entailed_world(path)
                lines.append(
                    f"  {format_path(path)}: {len(world.positives)}+ / "
                    f"{len(world.negatives)}-"
                )
            return "\n".join(lines)
        if command == "world":
            if not argument:
                return "usage: \\world <user[.user...]>"
            path = tuple(p for p in argument.split(".") if p)
            return f"  {self.db.world(list(path))}"
        if command == "kripke":
            return self.db.kripke().describe()
        if command == "stats":
            return self.db.describe()
        if command == "explain":
            if not argument.lower().startswith("select"):
                return "usage: \\explain select ..."
            from repro.query.explain import explain

            statement = parse_beliefsql(argument)
            query = compile_select(statement, self.db.schema)  # type: ignore[arg-type]
            if query is None:
                return "provably empty (contradictory constants)"
            return explain(self.db.store, query, analyze=True).render()
        return f"unknown command \\{command} (try \\help)"

    # -- scripting ------------------------------------------------------------

    def run_script(self, lines: list[str]) -> list[str]:
        """Feed many lines; returns the outputs (stops at \\quit)."""
        outputs = []
        for line in lines:
            outputs.append(self.feed(line))
            if self.done:
                break
        return outputs


def main(schema: ExternalSchema | None = None) -> None:  # pragma: no cover
    shell = BeliefShell(
        BeliefDBMS(schema if schema is not None else sightings_schema())
    )
    print("Belief DBMS shell — BeliefSQL plus \\help for meta-commands.")
    while not shell.done:
        try:
            line = input(PROMPT)
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = shell.feed(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()

"""Conflict-heavy curation workload over the belief lifecycle subsystem.

Models the NatureMapping curation desk on top of the lifecycle state
machine: volunteers report sightings, curators *propose* lifecycle tracking
for them, review queues drain PROPOSED beliefs to ACTIVE, reviewers
challenge dubious ones, racing curators fight over the same CHALLENGED
belief with compare-and-swap transitions (exactly one wins; the losers get
the typed ``LIFECYCLE_CONFLICT``), and periodic decay sweeps age every
confidence. Deterministic for a given seed, except for *who* wins a race —
the aggregate counts (one winner per contended belief, the rest conflicts)
are deterministic either way.

The same workload drives every deployment shape through a small driver
facade: :class:`EmbeddedDriver` wraps a :class:`~repro.bdms.bdms.BeliefDBMS`
directly; :class:`ClientDriver` wraps anything with the
:class:`~repro.server.client.BeliefClient` lifecycle surface (threaded
server, asyncio server via a sync bridge, shard router).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import LifecycleConflictError
from repro.workload.generator import LOCATIONS, SPECIES

CURATORS = ("Alice", "Bob", "Carol", "Dave")


@dataclass
class CurationConfig:
    n_beliefs: int = 24
    seed: int = 11
    #: Fraction of ACTIVE beliefs challenged per review round.
    challenge_rate: float = 0.5
    #: Review rounds (accept / challenge / resolve / sweep) to run.
    rounds: int = 2
    #: Racing curators per contended belief in the conflict phase.
    racers: int = 3
    #: Decay spec given to proposed beliefs (mix with "none" for variety).
    decay: str = "exponential:1800"


@dataclass
class CurationStats:
    proposed: int = 0
    transitions: int = 0
    conflicts: int = 0
    sweeps: int = 0
    swept: int = 0
    decayed: int = 0
    audit_events: int = 0
    by_status: dict[str, int] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return dict(vars(self))


# ------------------------------------------------------------------ drivers


class EmbeddedDriver:
    """The curation surface of one in-process BDMS."""

    def __init__(self, db: Any) -> None:
        self.db = db

    def propose(
        self, path: Sequence[Any], relation: str, values: Sequence[Any],
        **kw: Any,
    ) -> dict[str, Any]:
        return self.db.lifecycle_propose(path, relation, values, **kw)

    def transition(self, belief: str, to: str, **kw: Any) -> dict[str, Any]:
        kw.pop("path", None)  # routing-only; meaningless embedded
        return self.db.lifecycle_transition(belief, to, **kw)

    def sweep(self) -> dict[str, Any]:
        return self.db.lifecycle_decay_sweep()

    def queue(self, **kw: Any) -> list[dict[str, Any]]:
        return self.db.lifecycle_list(**kw)

    def audit(self, **kw: Any) -> list[dict[str, Any]]:
        return self.db.audit_log(**kw)

    def insert(
        self, path: Sequence[Any], relation: str, values: Sequence[Any]
    ) -> None:
        self.db.insert(path, relation, values)


class ClientDriver:
    """The same surface over a wire client (server or shard router)."""

    def __init__(self, client: Any) -> None:
        self.client = client

    def propose(
        self, path: Sequence[Any], relation: str, values: Sequence[Any],
        **kw: Any,
    ) -> dict[str, Any]:
        return self.client.lifecycle_propose(
            relation, values, path=path, **kw
        )

    def transition(self, belief: str, to: str, **kw: Any) -> dict[str, Any]:
        return self.client.lifecycle_transition(belief, to, **kw)

    def sweep(self) -> dict[str, Any]:
        return self.client.lifecycle_decay_sweep()

    def queue(self, **kw: Any) -> list[dict[str, Any]]:
        return self.client.lifecycle_queue(**kw)

    def audit(self, **kw: Any) -> list[dict[str, Any]]:
        return self.client.audit_log(**kw)

    def insert(
        self, path: Sequence[Any], relation: str, values: Sequence[Any]
    ) -> None:
        self.client.insert(relation, values, path=path)


# ------------------------------------------------------------------ phases


def seed_beliefs(
    driver: Any, config: CurationConfig, curators: Sequence[str] = CURATORS
) -> list[str]:
    """Insert sightings and propose lifecycle tracking for each.

    Every third belief derives from the previous one (a correction chain),
    giving the workload real provenance links to audit later.
    """
    rng = random.Random(config.seed)
    belief_ids: list[str] = []
    for i in range(config.n_beliefs):
        curator = curators[i % len(curators)]
        sid = f"cs{i + 1}"
        values = (
            sid, curator, rng.choice(SPECIES),
            f"{rng.randrange(1, 13)}-{rng.randrange(1, 29)}-08",
            rng.choice(LOCATIONS),
        )
        driver.insert((curator,), "Sightings", values)
        derived: list[str] = [curators[(i + 1) % len(curators)]]
        if i % 3 == 2 and belief_ids:
            derived.append(belief_ids[-1])
        view = driver.propose(
            (curator,), "Sightings", values,
            actor=curator,
            confidence=round(0.5 + rng.random() / 2, 3),
            decay=config.decay if i % 2 else "none",
            derived_from=derived,
        )
        belief_ids.append(view["belief"])
    return belief_ids


def run_review_rounds(
    driver: Any,
    belief_ids: Sequence[str],
    config: CurationConfig,
    stats: CurationStats,
    curators: Sequence[str] = CURATORS,
) -> None:
    """Drain the review queue: accept, challenge a subset, resolve, sweep."""
    rng = random.Random(config.seed + 1)
    for _ in range(config.rounds):
        for view in driver.queue(status="PROPOSED"):
            driver.transition(
                view["belief"], "ACTIVE",
                actor=rng.choice(curators), expect="PROPOSED",
                path=view["path"],
            )
            stats.transitions += 1
        for view in driver.queue(status="ACTIVE"):
            if rng.random() >= config.challenge_rate:
                continue
            driver.transition(
                view["belief"], "CHALLENGED",
                actor=rng.choice(curators), expect="ACTIVE",
                reason="spot check", path=view["path"],
            )
            stats.transitions += 1
        for view in driver.queue(status="CHALLENGED"):
            resolved = "ACTIVE" if rng.random() < 0.7 else "DEPRECATED"
            driver.transition(
                view["belief"], resolved,
                actor=rng.choice(curators), expect="CHALLENGED",
                path=view["path"],
            )
            stats.transitions += 1
        swept = driver.sweep()
        stats.sweeps += 1
        stats.swept += swept["swept"]
        stats.decayed += swept["changed"]
    for view in driver.queue(status="DEPRECATED"):
        driver.transition(
            view["belief"], "ARCHIVED",
            actor=rng.choice(curators), expect="DEPRECATED",
            path=view["path"],
        )
        stats.transitions += 1


def race_challenges(
    driver_factory: Callable[[], Any],
    targets: Sequence[dict[str, Any]],
    racers: int,
    stats: CurationStats,
    curators: Sequence[str] = CURATORS,
) -> None:
    """The conflict phase: ``racers`` curators CAS the *same* beliefs.

    Every racer attempts ``ACTIVE -> CHALLENGED expect=ACTIVE`` on every
    target concurrently (a barrier lines them up per belief). Exactly one
    wins each belief; the rest observe the typed conflict. The winner's
    challenge is then resolved back to ACTIVE so races can stack.
    ``driver_factory`` is called once per racer thread — wire drivers need
    a private connection each.
    """
    for view in targets:
        barrier = threading.Barrier(racers)
        outcomes: list[bool] = []
        lock = threading.Lock()

        def attempt(who: str, belief: str, path: list) -> None:
            driver = driver_factory()
            barrier.wait()
            try:
                driver.transition(
                    belief, "CHALLENGED", actor=who, expect="ACTIVE",
                    reason=f"{who} disputes this", path=path,
                )
                won = True
            except LifecycleConflictError:
                won = False
            with lock:
                outcomes.append(won)

        threads = [
            threading.Thread(
                target=attempt,
                args=(curators[i % len(curators)], view["belief"],
                      view["path"]),
            )
            for i in range(racers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wins = sum(outcomes)
        if wins != 1:
            raise AssertionError(
                f"race on {view['belief']}: {wins} winners of "
                f"{len(outcomes)} racers (exactly 1 expected)"
            )
        stats.transitions += 1
        stats.conflicts += len(outcomes) - 1
        resolver = driver_factory()
        resolver.transition(
            view["belief"], "ACTIVE", actor=curators[0],
            expect="CHALLENGED", reason="race resolved", path=view["path"],
        )
        stats.transitions += 1


def run_curation(
    driver: Any,
    config: CurationConfig | None = None,
    driver_factory: Callable[[], Any] | None = None,
) -> CurationStats:
    """The full workload: seed, review rounds, CAS races, final sweep.

    ``driver_factory`` supplies per-thread drivers for the race phase;
    defaults to reusing ``driver`` (fine embedded, where the BDMS write
    mutex serializes, wrong for one shared wire connection).
    """
    config = config or CurationConfig()
    factory = driver_factory or (lambda: driver)
    stats = CurationStats()
    start = time.perf_counter()
    belief_ids = seed_beliefs(driver, config)
    stats.proposed = len(belief_ids)
    run_review_rounds(driver, belief_ids, config, stats)
    contended = driver.queue(status="ACTIVE")[: max(1, config.n_beliefs // 4)]
    if contended:
        race_challenges(factory, contended, config.racers, stats)
    final = driver.sweep()
    stats.sweeps += 1
    stats.swept += final["swept"]
    stats.decayed += final["changed"]
    for view in driver.queue():
        stats.by_status[view["status"]] = (
            stats.by_status.get(view["status"], 0) + 1
        )
    stats.audit_events = len(driver.audit())
    stats.elapsed_s = time.perf_counter() - start
    return stats

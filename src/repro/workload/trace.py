"""Update traces: record, serialize, and replay belief-database sessions.

A trace is an ordered list of update operations (inserts and deletes of
belief statements, user registrations). Traces serve three purposes:

* **reproducibility** — the exact update sequence behind an experiment can
  be saved next to its results and replayed later;
* **auditing** — a collaborative-curation deployment wants the who-said-what
  history, which the store itself (holding only current explicit beliefs)
  does not keep;
* **portable workloads** — a trace recorded against one store replays
  against any backend/mode combination, which is how the cross-backend
  integration tests drive identical state everywhere.

Serialization is JSON-lines; values must be JSON-representable (strings,
numbers, booleans, None — exactly what external schemas hold in practice).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

from repro.core.schema import GroundTuple
from repro.core.statements import BeliefStatement, Sign
from repro.errors import BeliefDBError
from repro.storage.store import BeliefStore
from repro.storage.updates import delete_statement, insert_statement

#: Operation kinds recorded in a trace.
OP_ADD_USER = "add_user"
OP_INSERT = "insert"
OP_DELETE = "delete"


@dataclass(frozen=True)
class TraceEntry:
    """One recorded operation."""

    op: str
    uid: object = None
    name: str | None = None
    path: tuple = ()
    relation: str | None = None
    values: tuple = ()
    sign: str = "+"
    #: What the store answered (inserted/deleted successfully or rejected).
    outcome: bool = True

    def to_json(self) -> str:
        payload = {
            "op": self.op,
            "uid": self.uid,
            "name": self.name,
            "path": list(self.path),
            "relation": self.relation,
            "values": list(self.values),
            "sign": self.sign,
            "outcome": self.outcome,
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BeliefDBError(f"malformed trace line: {exc}") from exc
        return cls(
            op=payload["op"],
            uid=payload.get("uid"),
            name=payload.get("name"),
            path=tuple(payload.get("path", ())),
            relation=payload.get("relation"),
            values=tuple(payload.get("values", ())),
            sign=payload.get("sign", "+"),
            outcome=payload.get("outcome", True),
        )

    def statement(self) -> BeliefStatement:
        if self.relation is None:
            raise BeliefDBError(f"entry {self.op!r} carries no statement")
        return BeliefStatement(
            tuple(self.path),
            GroundTuple(self.relation, tuple(self.values)),
            Sign.coerce(self.sign),
        )


@dataclass
class UpdateTrace:
    """An ordered, serializable list of operations."""

    entries: list[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    # -- serialization ---------------------------------------------------

    def dump(self, sink: IO[str]) -> None:
        for entry in self.entries:
            sink.write(entry.to_json() + "\n")

    def dumps(self) -> str:
        return "".join(entry.to_json() + "\n" for entry in self.entries)

    @classmethod
    def load(cls, source: IO[str] | Iterable[str]) -> "UpdateTrace":
        entries = [
            TraceEntry.from_json(line)
            for line in source
            if line.strip()
        ]
        return cls(entries)

    @classmethod
    def loads(cls, text: str) -> "UpdateTrace":
        return cls.load(text.splitlines())


class TraceRecorder:
    """Wraps a store; performs operations while recording them."""

    def __init__(self, store: BeliefStore) -> None:
        self.store = store
        self.trace = UpdateTrace()

    def add_user(self, name: str | None = None, uid: object = None) -> object:
        assigned = self.store.add_user(name=name, uid=uid)
        self.trace.entries.append(
            TraceEntry(
                op=OP_ADD_USER, uid=assigned, name=self.store.user_name(assigned)
            )
        )
        return assigned

    def insert(self, stmt: BeliefStatement) -> bool:
        ok = insert_statement(self.store, stmt)
        self.trace.entries.append(_statement_entry(OP_INSERT, stmt, ok))
        return ok

    def delete(self, stmt: BeliefStatement) -> bool:
        ok = delete_statement(self.store, stmt)
        self.trace.entries.append(_statement_entry(OP_DELETE, stmt, ok))
        return ok


def _statement_entry(op: str, stmt: BeliefStatement, ok: bool) -> TraceEntry:
    return TraceEntry(
        op=op,
        path=stmt.path,
        relation=stmt.tuple.relation,
        values=stmt.tuple.values,
        sign=str(stmt.sign),
        outcome=ok,
    )


@dataclass
class ReplayResult:
    applied: int = 0
    mismatches: list[int] = field(default_factory=list)

    @property
    def faithful(self) -> bool:
        """Did every operation produce the originally recorded outcome?"""
        return not self.mismatches


def replay(
    trace: UpdateTrace,
    store: BeliefStore,
    strict: bool = False,
) -> ReplayResult:
    """Apply a trace to a (typically fresh) store.

    Outcomes are compared against the recorded ones; with ``strict`` a
    mismatch raises (a faithful replay on a fresh store must reproduce every
    accept/reject decision — Alg. 4 is deterministic).
    """
    result = ReplayResult()
    for index, entry in enumerate(trace):
        if entry.op == OP_ADD_USER:
            if not store.has_user(entry.uid):
                store.add_user(name=entry.name, uid=entry.uid)
            outcome = True
        elif entry.op == OP_INSERT:
            outcome = insert_statement(store, entry.statement())
        elif entry.op == OP_DELETE:
            outcome = delete_statement(store, entry.statement())
        else:
            raise BeliefDBError(f"unknown trace op {entry.op!r}")
        result.applied += 1
        if outcome != entry.outcome:
            result.mismatches.append(index)
            if strict:
                raise BeliefDBError(
                    f"replay diverged at entry {index}: {entry.op} "
                    f"produced {outcome}, trace recorded {entry.outcome}"
                )
    return result

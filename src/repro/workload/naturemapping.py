"""NatureMapping-flavoured demo scenario (Sect. 2's motivating application).

Builds a small but realistic collaborative-curation state: volunteers report
sightings, experts review them — agreeing by default, disagreeing explicitly,
suggesting corrections, and annotating each other's annotations. Used by the
examples and integration tests; fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.bdms.bdms import BeliefDBMS
from repro.bdms.session import UserSession
from repro.core.schema import sightings_schema
from repro.workload.generator import LOCATIONS, SPECIES

#: Plausible misidentification pairs (looks-similar species).
CONFUSABLE = {
    "bald eagle": "fish eagle",
    "fish eagle": "bald eagle",
    "crow": "raven",
    "raven": "crow",
    "douglas squirrel": "mountain beaver",
    "red-tailed hawk": "osprey",
}

VOLUNTEERS = ("Carol", "Dave", "Erin", "Frank")
EXPERTS = ("Alice", "Bob")


@dataclass
class Scenario:
    db: BeliefDBMS
    volunteers: list[UserSession]
    experts: list[UserSession]
    sighting_ids: list[str]


def build_scenario(
    n_sightings: int = 24,
    seed: int = 7,
    backend: str = "engine",
    disagreement_rate: float = 0.35,
) -> Scenario:
    """Populate a BDMS with volunteer reports and expert curation beliefs.

    Experts disagree with ~``disagreement_rate`` of the sightings; for half of
    those they suggest the confusable species instead, and occasionally they
    explain a colleague's error with a higher-order annotation plus a comment
    — mirroring the i1-i8 narrative of Sect. 2.
    """
    rng = random.Random(seed)
    db = BeliefDBMS(sightings_schema(), backend=backend, strict=False)
    volunteers = [UserSession(db, db.add_user(name)) for name in VOLUNTEERS]
    experts = [UserSession(db, db.add_user(name)) for name in EXPERTS]

    sighting_ids: list[str] = []
    comment_seq = 0
    for i in range(n_sightings):
        sid = f"s{i + 1}"
        sighting_ids.append(sid)
        reporter = rng.choice(volunteers)
        species = rng.choice(SPECIES)
        date = f"{rng.randrange(1, 13)}-{rng.randrange(1, 29)}-08"
        location = rng.choice(LOCATIONS)
        reporter.report("Sightings", sid, reporter.uid, species, date, location)

        if rng.random() >= disagreement_rate:
            continue
        expert = rng.choice(experts)
        # The expert rejects the reported species...
        expert.doubts("Sightings", sid, reporter.uid, species, date, location)
        if rng.random() < 0.5:
            continue
        # ...and suggests what was probably seen instead.
        suggestion = CONFUSABLE.get(species, rng.choice(SPECIES))
        if suggestion == species:
            continue
        expert.believes("Sightings", sid, reporter.uid, suggestion, date, location)
        if rng.random() < 0.5:
            # Higher-order explanation: what the expert thinks the reporter
            # believed, plus their own corrected comment (the i7/i8 pattern).
            comment_seq += 1
            cid = f"c{comment_seq}"
            expert.believes_that(
                (reporter.uid,), "Comments", cid, f"saw a {species}", sid
            )
            expert.believes(
                "Comments", cid, f"probably a {suggestion}", sid
            )
    return Scenario(db, volunteers, experts, sighting_ids)


def conflict_report(scenario: Scenario) -> list[tuple]:
    """All (user, sid, species reported, species believed) disagreements."""
    rows = scenario.db.execute_sql(
        "select U2.name, S1.sid, S1.species, S2.species "
        "from Users as U1, Users as U2, "
        "BELIEF U1.uid Sightings as S1, BELIEF U2.uid Sightings as S2 "
        "where S1.sid = S2.sid and S1.species <> S2.species"
    ).rows
    assert isinstance(rows, list)
    return rows

"""Synthetic workloads: the Sect. 6 generator and a NatureMapping scenario."""

from repro.workload.generator import (
    LOCATIONS,
    SPECIES,
    AnnotationGenerator,
    ConcurrentOp,
    WorkloadConfig,
    WorkloadStats,
    build_store,
    concurrent_trace,
    populate_store,
)
from repro.workload.curation import (
    CURATORS,
    ClientDriver,
    CurationConfig,
    CurationStats,
    EmbeddedDriver,
    race_challenges,
    run_curation,
    seed_beliefs,
)
from repro.workload.naturemapping import (
    CONFUSABLE,
    EXPERTS,
    VOLUNTEERS,
    Scenario,
    build_scenario,
    conflict_report,
)
from repro.workload.trace import (
    ReplayResult,
    TraceEntry,
    TraceRecorder,
    UpdateTrace,
    replay,
)

__all__ = [
    "AnnotationGenerator",
    "CONFUSABLE",
    "CURATORS",
    "ClientDriver",
    "ConcurrentOp",
    "concurrent_trace",
    "CurationConfig",
    "CurationStats",
    "EmbeddedDriver",
    "EXPERTS",
    "LOCATIONS",
    "ReplayResult",
    "SPECIES",
    "Scenario",
    "TraceEntry",
    "TraceRecorder",
    "UpdateTrace",
    "VOLUNTEERS",
    "WorkloadConfig",
    "WorkloadStats",
    "build_scenario",
    "build_store",
    "conflict_report",
    "populate_store",
    "race_challenges",
    "replay",
    "run_curation",
    "seed_beliefs",
]

"""Synthetic annotation generator (Sect. 6.1).

The paper's experiments use "a generic annotation generator that creates
parameterized belief annotations", modelling

* *annotation skew* as a discrete distribution ``Pr[k = x]`` over the nesting
  depth of annotations (e.g. Table 1 uses [⅓,⅓,⅓], [0.8, 0.19, 0.01] and
  [0.199, 0.8, 0.001] over depths {0, 1, 2}), and
* *user participation* as either uniform or a generalized Zipf distribution
  ("user 1 is responsible for 50% of all annotations, user 2 for 25%, ...").

This module reimplements that generator over the experiment schema (the
running example without Comments, as in Sect. 6). Annotations are streamed as
:class:`BeliefStatement` values and loaded through the incremental update
algorithms; statements the store rejects (explicit conflicts) are regenerated,
so ``n`` always counts *accepted* annotations, matching the paper's "number of
belief annotations in the database".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.schema import ExternalSchema, experiment_schema
from repro.core.statements import NEGATIVE, POSITIVE, BeliefStatement, Sign
from repro.errors import BeliefDBError
from repro.storage.store import BeliefStore
from repro.storage.updates import insert_statement

#: Species pool for generated sightings (names from the NatureMapping domain).
SPECIES = (
    "bald eagle", "fish eagle", "crow", "raven", "osprey", "great blue heron",
    "red-tailed hawk", "barred owl", "douglas squirrel", "black bear",
    "mountain beaver", "rufous hummingbird", "steller's jay", "common loon",
)

LOCATIONS = (
    "Lake Forest", "Lake Placid", "Cedar River", "Mount Si", "Puget Sound",
    "Snoqualmie Pass", "Olympic NP", "Discovery Park", "Union Bay",
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic annotation workload.

    ``depth_distribution[k]`` is ``Pr[depth = k]``; it must sum to ~1. The
    paper's Table 1 rows correspond to ``(1/3, 1/3, 1/3)``,
    ``(0.8, 0.19, 0.01)`` and ``(0.199, 0.8, 0.001)``.

    ``participation`` is ``"uniform"``, ``"zipf"`` (weights ``1/rank^s`` with
    ``s = zipf_exponent``), or ``"geometric"`` (weights ``2^-rank`` — the
    paper's "user 1 contributes 50%, user 2 25%" illustration).
    """

    n_annotations: int
    n_users: int
    depth_distribution: tuple[float, ...] = (1 / 3, 1 / 3, 1 / 3)
    participation: str = "uniform"
    zipf_exponent: float = 1.0
    seed: int = 0
    #: Optional *fixed* external-key pool. By default (None) the generator
    #: mimics the application: depth-0 annotations report fresh sightings
    #: (new keys) while deeper annotations target previously seen keys. A
    #: fixed small pool forces heavy key conflicts, useful in tests.
    n_keys: int | None = None
    #: Probability that a depth ≥ 1 annotation is a negative belief.
    negative_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.n_annotations < 0 or self.n_users < 1:
            raise BeliefDBError("need n_annotations >= 0 and n_users >= 1")
        if self.participation not in ("uniform", "zipf", "geometric"):
            raise BeliefDBError(
                f"unknown participation model {self.participation!r}"
            )
        total = sum(self.depth_distribution)
        if not 0.99 <= total <= 1.01:
            raise BeliefDBError(
                f"depth distribution sums to {total}, expected ~1"
            )


@dataclass
class WorkloadStats:
    """Load statistics: accepted = the paper's ``n``."""

    accepted: int = 0
    rejected: int = 0
    by_depth: dict[int, int] = field(default_factory=dict)

    def record(self, stmt: BeliefStatement, ok: bool) -> None:
        if ok:
            self.accepted += 1
            d = stmt.depth
            self.by_depth[d] = self.by_depth.get(d, 0) + 1
        else:
            self.rejected += 1


class AnnotationGenerator:
    """Streams random belief statements according to a :class:`WorkloadConfig`."""

    def __init__(
        self, config: WorkloadConfig, schema: ExternalSchema | None = None
    ) -> None:
        self.config = config
        self.schema = schema if schema is not None else experiment_schema()
        self.relation = self.schema.content_relations[0]
        self.rng = random.Random(config.seed)
        self.users: tuple[int, ...] = tuple(range(1, config.n_users + 1))
        self._weights = self._participation_weights()
        self._depths = tuple(range(len(config.depth_distribution)))
        self._key_counter = 0
        self._issued_keys: list[str] = []

    def _participation_weights(self) -> tuple[float, ...]:
        model = self.config.participation
        if model == "uniform":
            return tuple(1.0 for _ in self.users)
        if model == "zipf":
            s = self.config.zipf_exponent
            return tuple(1.0 / (rank ** s) for rank in range(1, len(self.users) + 1))
        return tuple(2.0 ** -rank for rank in range(1, len(self.users) + 1))

    # -- sampling ----------------------------------------------------------

    def sample_depth(self) -> int:
        return self.rng.choices(self._depths, weights=self.config.depth_distribution)[0]

    def sample_user(self) -> int:
        return self.rng.choices(self.users, weights=self._weights)[0]

    def sample_path(self, depth: int) -> tuple[int, ...]:
        path: list[int] = []
        while len(path) < depth:
            uid = self.sample_user()
            if path and path[-1] == uid:
                if len(self.users) == 1:
                    break  # a single user cannot nest beliefs
                continue
            path.append(uid)
        return tuple(path)

    def _fresh_key(self) -> str:
        key = f"s{self._key_counter}"
        self._key_counter += 1
        self._issued_keys.append(key)
        return key

    def sample_key(self, depth: int) -> str:
        """New sightings get fresh keys; annotations target existing ones."""
        if self.config.n_keys is not None:
            return f"s{self.rng.randrange(self.config.n_keys)}"
        if depth == 0 or not self._issued_keys:
            return self._fresh_key()
        return self.rng.choice(self._issued_keys)

    def sample_tuple(self, depth: int = 0):
        rng = self.rng
        return self.relation.tuple(
            self.sample_key(depth),
            rng.choice(self.users),
            rng.choice(SPECIES),
            f"{rng.randrange(1, 13)}-{rng.randrange(1, 29)}-08",
            rng.choice(LOCATIONS),
        )

    def sample_statement(self) -> BeliefStatement:
        depth = self.sample_depth()
        path = self.sample_path(depth)
        sign: Sign = POSITIVE
        if path and self.rng.random() < self.config.negative_fraction:
            sign = NEGATIVE
        return BeliefStatement(path, self.sample_tuple(len(path)), sign)

    def __iter__(self) -> Iterator[BeliefStatement]:
        while True:
            yield self.sample_statement()


def populate_store(
    store: BeliefStore,
    config: WorkloadConfig,
    max_attempts_factor: int = 20,
) -> WorkloadStats:
    """Register users and load ``config.n_annotations`` accepted annotations.

    Rejected statements (explicit conflicts, duplicates) are regenerated; a
    safety valve aborts after ``max_attempts_factor × n`` attempts so
    pathological configurations cannot loop forever.
    """
    generator = AnnotationGenerator(config, store.schema)
    for uid in generator.users:
        if not store.has_user(uid):
            store.add_user(name=f"user{uid}", uid=uid)
    stats = WorkloadStats()
    attempts = 0
    limit = max(1, config.n_annotations) * max_attempts_factor
    stream = iter(generator)
    while stats.accepted < config.n_annotations:
        attempts += 1
        if attempts > limit:
            raise BeliefDBError(
                f"generator exceeded {limit} attempts "
                f"({stats.accepted}/{config.n_annotations} accepted); "
                "loosen the configuration (more keys, fewer negatives)"
            )
        stmt = next(stream)
        stats.record(stmt, insert_statement(store, stmt))
    return stats


@dataclass(frozen=True)
class ConcurrentOp:
    """One operation in a per-user concurrent stream.

    ``kind`` is ``"insert"`` (a positive belief in the acting user's world),
    ``"dispute"`` (a negative belief about some tuple), or ``"select"`` (a
    BeliefSQL query, carried in ``sql``). Streams are plain data so they can
    be driven through the in-process BDMS *or* a
    :class:`~repro.server.client.BeliefClient` unchanged.
    """

    kind: str
    relation: str | None = None
    values: tuple | None = None
    sql: str | None = None


def concurrent_trace(
    n_users: int,
    n_ops: int,
    seed: int = 0,
    schema: ExternalSchema | None = None,
    dispute_fraction: float = 0.25,
    select_fraction: float = 0.1,
) -> dict[str, list[ConcurrentOp]]:
    """Per-user operation streams for a concurrent curation workload.

    Returns ``{user_name: [op, ...]}`` with ``n_ops`` operations per user.
    Each user's stream is generated from an independent RNG derived from
    ``seed``, so a stream does not depend on how the others are interleaved —
    the property that makes these traces usable for throughput benchmarks at
    any client count. Users report fresh sightings under their own keys and
    dispute readings drawn from a *shared* key pool whose tuple values are a
    pure function of the key, so concurrent streams genuinely contend on
    identical tuples.
    """
    if n_users < 1 or n_ops < 0:
        raise BeliefDBError("need n_users >= 1 and n_ops >= 0")
    schema = schema if schema is not None else experiment_schema()
    relation = schema.content_relations[0].name
    # Sized from n_ops alone so a user's stream is identical at any client
    # count (comparable work per client in the throughput benchmarks).
    shared_keys = [f"s{k}" for k in range(max(1, n_ops // 2))]
    streams: dict[str, list[ConcurrentOp]] = {}
    for index in range(n_users):
        name = f"user{index + 1}"
        rng = random.Random(seed * 1_000_003 + index)
        ops: list[ConcurrentOp] = []
        for k in range(n_ops):
            roll = rng.random()
            if roll < dispute_fraction:
                # The disputed reading is derived entirely from the shared
                # key, so two users disputing the same key dispute the
                # *identical* tuple (same internal tid) from their own
                # worlds — genuine cross-client contention on shared data.
                key_index = rng.randrange(len(shared_keys))
                ops.append(ConcurrentOp(
                    kind="dispute",
                    relation=relation,
                    values=(
                        shared_keys[key_index],
                        f"user{1 + key_index % 8}",
                        SPECIES[key_index % len(SPECIES)],
                        f"{1 + key_index % 12}-{1 + key_index % 28}-08",
                        LOCATIONS[key_index % len(LOCATIONS)],
                    ),
                ))
            elif roll < dispute_fraction + select_fraction:
                ops.append(ConcurrentOp(
                    kind="select",
                    sql=(
                        f"select S.sid, S.species from "
                        f"BELIEF '{name}' {relation} as S"
                    ),
                ))
            else:
                ops.append(ConcurrentOp(
                    kind="insert",
                    relation=relation,
                    values=(
                        f"{name}-s{k}",
                        name,
                        rng.choice(SPECIES),
                        f"{rng.randrange(1, 13)}-{rng.randrange(1, 29)}-08",
                        rng.choice(LOCATIONS),
                    ),
                ))
        streams[name] = ops
    return streams


def build_store(
    config: WorkloadConfig,
    eager: bool = True,
    schema: ExternalSchema | None = None,
) -> tuple[BeliefStore, WorkloadStats]:
    """Create a fresh store and populate it; the Sect. 6 experiment setup."""
    store = BeliefStore(
        schema if schema is not None else experiment_schema(), eager=eager
    )
    stats = populate_store(store, config)
    return store, stats

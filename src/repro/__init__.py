"""repro — a full reproduction of *Believe It or Not: Adding Belief
Annotations to Databases* (Gatterbauer, Balazinska, Khoussainova, Suciu;
PVLDB 2(1), 2009).

The package implements the paper end to end:

* :mod:`repro.core` — the formal model: belief worlds, belief databases, the
  message-board closure ``D̄``, and the canonical Kripke structure (Sect. 3-4);
* :mod:`repro.relational` — a from-scratch in-memory relational engine with a
  non-recursive Datalog evaluator plus a ``sqlite3`` mirror backend (the
  substrate the paper ran on a commercial RDBMS);
* :mod:`repro.storage` — the internal schema ``R*, U, V, E, D, S`` and the
  update algorithms of Sect. 5 (``idWorld``, ``dss``, ``insertTuple``);
* :mod:`repro.query` — belief conjunctive queries, the Algorithm 1 translation
  to Datalog/SQL, a naive reference evaluator, and a lazy evaluator;
* :mod:`repro.beliefsql` — the BeliefSQL language of Fig. 1;
* :mod:`repro.bdms` — the user-facing Belief DBMS facade;
* :mod:`repro.workload` — the synthetic annotation generator of Sect. 6;
* :mod:`repro.server` — the multi-user network layer: wire protocol with
  request-id pipelining, two server cores (threaded and pipelined asyncio)
  over one shared BDMS, per-connection sessions, batched ``execute_batch``
  writes, and blocking/pipelined/asyncio client libraries;
* :mod:`repro.api` — the DB-API-style surface: ``connect()`` →
  Connection → Cursor with ``?`` parameter binding and typed
  :class:`~repro.api.result.Result` values, identical against an embedded
  BDMS and a remote server;
* :mod:`repro.durability` — persistence: fsync'd write-ahead log, atomic
  snapshots, and crash recovery (``connect(..., data_dir=...)`` /
  ``python -m repro serve --data-dir ...``).

Quickstart::

    from repro import connect, sightings_schema

    conn = connect(sightings_schema())
    conn.add_user("Carol"); conn.add_user("Bob")
    cur = conn.cursor()
    cur.execute("insert into Sightings values (?,?,?,?,?)",
                ("s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"))
    cur.execute("insert into BELIEF ? not Sightings values (?,?,?,?,?)",
                ("Bob", "s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"))
    result = cur.execute(
        "select S.sid, S.species from BELIEF ? Sightings as S", ("Carol",))
    result.columns          # ('sid', 'species')
    result.rows             # what Carol believes (defaults included)
"""

from repro.core import (
    BeliefDatabase,
    BeliefStatement,
    BeliefWorld,
    ExternalSchema,
    GroundTuple,
    KripkeStructure,
    RelationDef,
    Sign,
    canonical_kripke,
    entailed_world,
    entails,
    experiment_schema,
    sightings_schema,
)
from repro.errors import (
    BeliefDBError,
    BeliefSQLError,
    InconsistencyError,
    InvalidBeliefPath,
    QueryError,
    RejectedUpdateError,
    SchemaError,
    UnsafeQueryError,
)

__version__ = "1.0.0"

__all__ = [
    "BeliefDBError",
    "BeliefDBMS",
    "BeliefDatabase",
    "BeliefSQLError",
    "BeliefStatement",
    "BeliefWorld",
    "Connection",
    "Cursor",
    "DurabilityManager",
    "ExternalSchema",
    "GroundTuple",
    "InconsistencyError",
    "InvalidBeliefPath",
    "KripkeStructure",
    "QueryError",
    "RejectedUpdateError",
    "RelationDef",
    "Result",
    "SchemaError",
    "Sign",
    "UnsafeQueryError",
    "canonical_kripke",
    "connect",
    "entailed_world",
    "entails",
    "experiment_schema",
    "sightings_schema",
]


def __getattr__(name: str):
    # These pull in the whole stack; import lazily to keep `import repro`
    # light for users who only need the core model.
    if name == "BeliefDBMS":
        from repro.bdms import BeliefDBMS

        return BeliefDBMS
    if name in ("connect", "Connection", "Cursor", "Result"):
        import repro.api

        return getattr(repro.api, name)
    if name == "DurabilityManager":
        from repro.durability import DurabilityManager

        return DurabilityManager
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""Relational representation and update algorithms of Sect. 5."""

from repro.storage.internal_schema import (
    D_TABLE,
    E_TABLE,
    EXPLICIT_NO,
    EXPLICIT_YES,
    ROOT_WID,
    S_TABLE,
    SIGN_NEG,
    SIGN_POS,
    U_TABLE,
    create_internal_tables,
    star_table_name,
    v_table_name,
)
from repro.storage.compaction import (
    CompactionStats,
    VacuumStats,
    compact,
    hollow_states,
    vacuum_star,
)
from repro.storage.representation import materialize, rebuild
from repro.storage.store import BeliefStore, sign_to_str, str_to_sign
from repro.storage.updates import (
    delete_statement,
    delete_tuple,
    dss_relational,
    id_world,
    insert_statement,
    insert_tuple,
    recompute_key,
)

__all__ = [
    "BeliefStore",
    "CompactionStats",
    "D_TABLE",
    "E_TABLE",
    "EXPLICIT_NO",
    "EXPLICIT_YES",
    "ROOT_WID",
    "S_TABLE",
    "SIGN_NEG",
    "SIGN_POS",
    "U_TABLE",
    "VacuumStats",
    "compact",
    "create_internal_tables",
    "delete_statement",
    "delete_tuple",
    "dss_relational",
    "hollow_states",
    "id_world",
    "insert_statement",
    "insert_tuple",
    "materialize",
    "rebuild",
    "recompute_key",
    "sign_to_str",
    "star_table_name",
    "str_to_sign",
    "v_table_name",
    "vacuum_star",
]

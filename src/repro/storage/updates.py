"""Incremental update algorithms over the canonical representation (Sect. 5.3).

Implements the paper's Algorithms 2-4 plus deletes:

* :func:`id_world` — Alg. 2 ``idWorld``: return a world's id, creating the
  world (with D/S/E bookkeeping, edge redirection, and implicit-content copy
  from its deepest suffix state) if needed;
* :func:`dss_relational` — Alg. 3 ``dss`` exactly as written, as non-recursive
  Datalog over ``E``/``D`` with a max aggregation (the registry fast path is
  :meth:`BeliefStore.wid_of_dss`; tests assert they agree);
* :func:`insert_tuple` — Alg. 4 ``insertTuple``: consistent insert of a signed
  tuple into a world, with default propagation to all dependent worlds in
  ascending depth order;
* :func:`delete_tuple` — removal of an explicit annotation with key-scoped
  re-derivation of defaults (the paper only sketches deletes; see DESIGN.md).

Deviations from the paper's text (documented in DESIGN.md §2, all covered by
the incremental-vs-batch property tests):

* when a new state ``w`` is created, existing deeper states whose deepest
  proper suffix is now ``w`` get their ``S`` backlink repointed (Alg. 2 only
  repoints ``E``);
* Alg. 4's dependent-world conflict check against ``dss(z)`` (its line 12-14)
  is implemented as the evident intent: ``z`` inherits ``t^s`` iff its parent
  *currently contains* ``t^s`` and ``z`` has no explicit conflict; implicit
  conflicts in ``z`` are overridden.
"""

from __future__ import annotations

from repro.core.paths import BeliefPath, can_extend, is_suffix, validate_path
from repro.core.schema import GroundTuple, Value
from repro.core.statements import POSITIVE, BeliefStatement, Sign
from repro.relational.datalog import Atom, Program, Rule, Var
from repro.storage.internal_schema import (
    D_TABLE,
    E_TABLE,
    EXPLICIT_NO,
    EXPLICIT_YES,
    ROOT_WID,
    SIGN_NEG,
    SIGN_POS,
)
from repro.storage.store import BeliefStore, sign_to_str


# --------------------------------------------------------------------- Alg. 3

def dss_relational(store: BeliefStore, path: BeliefPath) -> int:
    """Alg. 3: world id of the deepest suffix state, via E*/D Datalog queries.

    For ``p = 1 .. d+1`` evaluate ``T(z, y) :- E*(0, w[p,d], z), D(z, y)`` and
    return the ``z`` whose depth ``y`` is maximal. This runs entirely against
    the relational representation — no registry shortcuts — and serves as the
    faithful reference for :meth:`BeliefStore.wid_of_dss`.
    """
    best_wid = ROOT_WID
    best_depth = -1
    d = len(path)
    for p in range(d + 1):
        suffix = path[p:]
        z = Var("z")
        y = Var("y")
        body = []
        previous: object = ROOT_WID
        for i, uid in enumerate(suffix):
            nxt = Var(f"z{i}") if i < len(suffix) - 1 else z
            body.append(Atom(E_TABLE, (previous, uid, nxt)))
            previous = nxt
        if not suffix:
            body.append(Atom(D_TABLE, (ROOT_WID, y)))
            head = Atom("T_dss", (ROOT_WID, y))
        else:
            body.append(Atom(D_TABLE, (z, y)))
            head = Atom("T_dss", (z, y))
        program = Program([Rule(head, body)])
        for wid, depth in store.engine.run(program):
            if depth > best_depth:
                best_wid, best_depth = wid, depth
    return best_wid


# --------------------------------------------------------------------- Alg. 2

def id_world(store: BeliefStore, path: BeliefPath) -> int:
    """Alg. 2 ``idWorld``: the id of the world at ``path``, created on demand.

    Creation steps for a missing world ``w`` of depth ``d`` (numbers refer to
    the paper's listing):

    1-3.  ensure the prefix parent ``w[1,d-1]`` exists (recursively);
    4.    register a fresh wid with its ``D`` row;
    8.    record the ``S`` backlink to ``dss(w[2,d])`` (errata form);
    9.    copy the backlink target's content as implicit tuples (eager mode);
    6.    add outgoing edges ``(x, u, dss(w·u))`` for every user ``u ≠ w[d]``;
    5,7.  redirect the ``w[d]``-edge of every state having ``w[1,d-1]`` as a
          suffix whose current target is shallower than ``d`` — those edges'
          deepest suffix state is now ``w``;
    +     repoint the ``S`` backlink of states whose deepest proper suffix
          becomes ``w`` (see module docstring).
    """
    validate_path(path)
    existing = store.wid_for_path(path)
    if existing is not None:
        return existing
    store._check_path_users(path)
    prefix_wid = id_world(store, path[:-1])
    depth = len(path)
    last_user = path[-1]
    suffix_parent = store.wid_of_dss(path[1:])
    wid = store.register_world(path, suffix_parent)

    if store.eager:
        for relation in store.schema.content_relations:
            for _, tid, key, s, _ in store.v_table(relation.name).match_named(
                wid=suffix_parent
            ):
                store.insert_v(relation.name, wid, tid, key, s, EXPLICIT_NO)

    for uid in store.users():
        if can_extend(path, uid):
            store.set_edge(wid, uid, store.wid_of_dss(path + (uid,)))

    candidates = [prefix_wid] + store.dependents_by_depth(prefix_wid)
    for y in candidates:
        y_path = store.path_for_wid(y)
        if not can_extend(y_path, last_user):
            continue
        current = store.edge_target(y, last_user)
        if store.depth_of(current) < depth:
            store.set_edge(y, last_user, wid)

    for z in list(store.s_children(suffix_parent)):
        if z == wid:
            continue
        if is_suffix(path, store.path_for_wid(z)):
            store.repoint_s_parent(z, wid)
    return wid


# --------------------------------------------------------------------- Alg. 4

def insert_tuple(
    store: BeliefStore, path: BeliefPath, t: GroundTuple, sign: Sign
) -> bool:
    """Alg. 4 ``insertTuple``: insert ``t^s`` into the world at ``path``.

    Returns True iff the insert succeeded; False signals a conflict with
    existing *explicit* beliefs in that world (the caller may surface this as
    an error). On success, eager mode propagates the new belief as an implicit
    default into every dependent world that does not contradict it.
    """
    store.schema.validate(t)
    wid = id_world(store, path)
    # Alg. 4 creates the star row first; we defer creation until the insert
    # is known to succeed so rejected inserts leave no orphan tuples (the
    # conflict checks below treat an unknown tid as "tuple nowhere present").
    tid = store.tid_for(t)
    relation, key = t.relation, t.key
    sign_str = sign_to_str(sign)
    rows = store.v_rows_for_key(wid, relation, key)

    if tid is not None:
        # (3) already explicitly present -> reject as a no-op duplicate.
        if any(
            r[1] == tid and r[3] == sign_str and r[4] == EXPLICIT_YES
            for r in rows
        ):
            return False
        # (4) already implicitly present -> flip the explicitness flag.
        if any(
            r[1] == tid and r[3] == sign_str and r[4] == EXPLICIT_NO
            for r in rows
        ):
            store.delete_v(relation, wid=wid, tid=tid, s=sign_str, e=EXPLICIT_NO)
            store.insert_v(relation, wid, tid, key, sign_str, EXPLICIT_YES)
            store.explicit_db.add(BeliefStatement(path, t, sign), check=False)
            return True
    # (5) explicit conflicts block the insert.
    if _conflicts(rows, tid, sign_str, explicit_only=True):
        return False
    # (1) now the star row may be created.
    tid = store.tid_for(t, create=True)
    assert tid is not None
    # (6-7) the explicit tuple lands; overridden implicit beliefs disappear
    # as part of re-deriving the key cell from the suffix parent.
    store.insert_v(relation, wid, tid, key, sign_str, EXPLICIT_YES)
    store.explicit_db.add(BeliefStatement(path, t, sign), check=False)

    # (8-14) propagate the default to dependent worlds, shallowest first.
    # Each world's (relation, key) cell is re-derived from its suffix parent
    # — the overriding union of Fig. 9 restricted to one key. This subsumes
    # the paper's per-case checks (lines 11-14) and also clears implicit rows
    # that mirrored parent rows overridden by this insert, a case the paper's
    # surgical formulation misses when the dependent itself has an explicit
    # conflict (see DESIGN.md §2 and the incremental-vs-batch tests).
    if store.eager:
        recompute_key(store, wid, relation, key)
        for z in store.dependents_by_depth(wid):
            recompute_key(store, z, relation, key)
    return True


def _conflicts(rows, tid: int, sign_str: str, explicit_only: bool) -> bool:
    """Does ``t^s`` conflict with the given same-key V rows?

    Positive inserts conflict with a negative of the same tuple and with any
    positive of the same key (Γ1/Γ2); negative inserts conflict with a
    positive of the same tuple.
    """
    for _, tid2, _, s2, e2 in rows:
        if explicit_only and e2 != EXPLICIT_YES:
            continue
        if sign_str == SIGN_POS:
            if s2 == SIGN_POS or (s2 == SIGN_NEG and tid2 == tid):
                return True
        else:
            if s2 == SIGN_POS and tid2 == tid:
                return True
    return False


# --------------------------------------------------------------------- deletes

def delete_tuple(
    store: BeliefStore, path: BeliefPath, t: GroundTuple, sign: Sign
) -> bool:
    """Remove the explicit annotation ``path t^s``; re-derive defaults.

    Returns False when no such explicit annotation exists (implicit beliefs
    cannot be deleted — disagreeing is an insert of the opposite sign).
    After removal, the affected key is re-derived from the suffix parent in
    this world and in every dependent world, shallowest first, so defaults
    that the deleted annotation was blocking reappear.
    """
    validate_path(path)
    wid = store.wid_for_path(path)
    tid = store.tid_for(t)
    if wid is None or tid is None:
        return False
    relation, key = t.relation, t.key
    sign_str = sign_to_str(sign)
    rows = store.v_rows_for_key(wid, relation, key)
    if not any(
        r[1] == tid and r[3] == sign_str and r[4] == EXPLICIT_YES for r in rows
    ):
        return False
    store.delete_v(relation, wid=wid, tid=tid, s=sign_str, e=EXPLICIT_YES)
    store.explicit_db.discard(BeliefStatement(path, t, sign))
    if store.eager:
        recompute_key(store, wid, relation, key)
        for z in store.dependents_by_depth(wid):
            recompute_key(store, z, relation, key)
    return True


def recompute_key(
    store: BeliefStore, wid: int, relation: str, key: Value
) -> None:
    """Re-derive the implicit rows for one (world, relation, key) cell.

    Explicit rows stay; implicit rows are rebuilt as: every parent row that
    does not conflict with this world's explicit rows (the overriding union
    of Fig. 9, restricted to one key). The root has no parent and therefore
    carries no implicit rows.
    """
    rows = store.v_rows_for_key(wid, relation, key)
    explicit_pairs = {
        (tid, s) for _, tid, _, s, e in rows if e == EXPLICIT_YES
    }
    store.delete_v(relation, wid=wid, key=key, e=EXPLICIT_NO)
    parent = store.s_parent(wid)
    if parent is None:
        return
    has_explicit_positive = any(s == SIGN_POS for _, s in explicit_pairs)
    explicit_neg_tids = {tid for tid, s in explicit_pairs if s == SIGN_NEG}
    explicit_pos_tids = {tid for tid, s in explicit_pairs if s == SIGN_POS}
    for _, tidp, _, sp, _ in store.v_rows_for_key(parent, relation, key):
        if (tidp, sp) in explicit_pairs:
            continue
        if sp == SIGN_POS:
            if has_explicit_positive or tidp in explicit_neg_tids:
                continue
        else:
            if tidp in explicit_pos_tids:
                continue
        store.insert_v(relation, wid, tidp, key, sp, EXPLICIT_NO)


# --------------------------------------------------------------------- wrappers

def insert_statement(store: BeliefStore, stmt: BeliefStatement) -> bool:
    """Insert a :class:`BeliefStatement` (path validated, users checked)."""
    return insert_tuple(store, stmt.path, stmt.tuple, stmt.sign)


def delete_statement(store: BeliefStore, stmt: BeliefStatement) -> bool:
    return delete_tuple(store, stmt.path, stmt.tuple, stmt.sign)

"""Compaction utilities for long-lived belief stores.

Two kinds of garbage accumulate under sustained updates:

* **orphan star rows** — ground tuples in ``star_Ri`` no longer referenced by
  any valuation row (deletes remove V rows but, like the paper, keep the
  tuple store append-only);
* **hollow states** — worlds created by ``idWorld`` whose explicit content
  has since been deleted. They are semantically transparent (a state with no
  explicit statements carries exactly its deepest suffix state's content —
  the identity behind Thm. 17's pruning), but they keep paying their ``D``,
  ``S``, ``E`` and mirrored-``V`` rows in ``|R*|``.

:func:`vacuum_star` drops orphans in place. :func:`compact` re-materializes
the store from its explicit statements — the safe way to shed hollow states,
since edge and backlink targets of surviving states all change together.
Both report precise statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.representation import materialize
from repro.storage.store import BeliefStore


@dataclass(frozen=True)
class VacuumStats:
    """Result of a star-table vacuum."""

    removed_tuples: int
    remaining_tuples: int


@dataclass(frozen=True)
class CompactionStats:
    """Result of a full compaction."""

    store: BeliefStore
    removed_states: int
    removed_rows: int
    rows_before: int
    rows_after: int

    @property
    def shrink_factor(self) -> float:
        if self.rows_after == 0:
            return float("inf")
        return self.rows_before / self.rows_after


def referenced_tids(store: BeliefStore) -> set[int]:
    """All tuple ids referenced by at least one valuation row."""
    tids: set[int] = set()
    for relation in store.schema.content_relations:
        for row in store.v_table(relation.name):
            tids.add(row[1])
    return tids


def vacuum_star(store: BeliefStore) -> VacuumStats:
    """Drop star rows (and registry entries) for unreferenced tuples."""
    keep = referenced_tids(store)
    removed = 0
    for relation in store.schema.content_relations:
        star = store.star_table(relation.name)
        doomed = [row[0] for row in star if row[0] not in keep]
        for tid in doomed:
            star.delete_matching({0: tid})
            t = store._tuple_by_tid.pop(tid, None)
            if t is not None:
                store._tid_by_tuple.pop(t, None)
            removed += 1
    return VacuumStats(removed_tuples=removed, remaining_tuples=len(keep))


def hollow_states(store: BeliefStore) -> frozenset[tuple]:
    """States carrying no explicit annotation and shadowing no support path.

    These are exactly the states a batch re-materialization would not
    create: paths outside the prefix closure of the current support.
    """
    live = store.explicit_db.states()
    return frozenset(path for path in store.states() if path not in live)


def compact(store: BeliefStore) -> CompactionStats:
    """Rebuild the store without hollow states or orphan tuples.

    Returns a *new* store (the input is left untouched — swapping a live
    store under concurrent readers is the caller's concern, as it would be
    for a real DBMS). Entailed worlds of all surviving paths are preserved;
    the incremental-vs-batch property tests guarantee it.
    """
    doomed = hollow_states(store)
    rows_before = store.total_rows()
    fresh = materialize(
        store.to_belief_database(),
        eager=store.eager,
        user_names=store.users(),
    )
    rows_after = fresh.total_rows()
    return CompactionStats(
        store=fresh,
        removed_states=len(doomed),
        removed_rows=rows_before - rows_after,
        rows_before=rows_before,
        rows_after=rows_after,
    )

"""Batch materialization of the canonical representation (Sect. 5.1, Fig. 5).

:func:`materialize` builds a :class:`BeliefStore` for a core
:class:`BeliefDatabase` *from scratch*: register users, assign world ids in
(depth, path) order (so the running example reproduces Fig. 5's numbering),
lay down ``D``/``S``/``E``, then fill the star and valuation tables from the
closure. It deliberately shares no code with the incremental algorithms of
:mod:`repro.storage.updates` — the property tests compare the two table-by-
table, which is the strongest check we have on both.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.closure import entailed_world
from repro.core.database import BeliefDatabase
from repro.core.paths import ROOT_PATH, BeliefPath, User, can_extend
from repro.core.schema import ExternalSchema
from repro.core.statements import NEGATIVE, POSITIVE
from repro.core.worlds import BeliefWorld
from repro.errors import SchemaError
from repro.storage.internal_schema import (
    EXPLICIT_NO,
    EXPLICIT_YES,
    ROOT_WID,
    SIGN_NEG,
    SIGN_POS,
)
from repro.storage.store import BeliefStore


def _user_order_key(user: User) -> tuple[str, str]:
    return (type(user).__name__, repr(user))


def _path_order_key(path: BeliefPath) -> tuple[int, tuple[tuple[str, str], ...]]:
    return (len(path), tuple(_user_order_key(u) for u in path))


def materialize(
    belief_db: BeliefDatabase,
    eager: bool = True,
    user_names: Mapping[User, str] | None = None,
) -> BeliefStore:
    """Build the relational representation of ``belief_db``.

    World ids are assigned breadth-first by (depth, path order); users are
    registered in sorted order. ``user_names`` optionally supplies display
    names for the ``U`` table. The input database must be consistent and must
    carry a schema.
    """
    if belief_db.schema is None:
        raise SchemaError("materialize requires a belief database with a schema")
    belief_db.check_consistent()
    schema: ExternalSchema = belief_db.schema
    store = BeliefStore(schema, eager=eager)

    names = dict(user_names or {})
    for user in sorted(belief_db.all_users(), key=_user_order_key):
        store.add_user(name=names.get(user), uid=user)

    states = sorted(belief_db.states(), key=_path_order_key)
    for path in states:
        if path == ROOT_PATH:
            continue
        # Parent suffix states are shallower, hence already registered.
        store.register_world(path, store.wid_of_dss(path[1:]))

    # Edges can only be final once every state exists.
    for path in states:
        wid = store.wid_for_path(path)
        assert wid is not None
        for uid in sorted(store.users(), key=_user_order_key):
            if can_extend(path, uid):
                store.set_edge(wid, uid, store.wid_of_dss(path + (uid,)))

    for path in states:
        wid = store.wid_for_path(path)
        assert wid is not None
        world = (
            entailed_world(belief_db, path)
            if eager
            else belief_db.explicit_world(path)
        )
        explicit = belief_db.explicit_signs(path)
        _fill_world(store, wid, world, explicit)

    for stmt in belief_db.statements():
        store.explicit_db.add(stmt, check=False)
    return store


def _fill_world(
    store: BeliefStore,
    wid: int,
    world: BeliefWorld,
    explicit: set,
) -> None:
    for t in sorted(world.positives, key=repr):
        tid = store.tid_for(t, create=True)
        flag = EXPLICIT_YES if (t, POSITIVE) in explicit else EXPLICIT_NO
        store.insert_v(t.relation, wid, tid, t.key, SIGN_POS, flag)
    for t in sorted(world.negatives, key=repr):
        tid = store.tid_for(t, create=True)
        flag = EXPLICIT_YES if (t, NEGATIVE) in explicit else EXPLICIT_NO
        store.insert_v(t.relation, wid, tid, t.key, SIGN_NEG, flag)


def rebuild(store: BeliefStore, eager: bool | None = None) -> BeliefStore:
    """Re-materialize a store from its own explicit statements.

    Useful for compaction after many deletes (stale empty states disappear)
    and as the reference in incremental-vs-batch tests.
    """
    return materialize(
        store.to_belief_database(),
        eager=store.eager if eager is None else eager,
        user_names=store.users(),
    )

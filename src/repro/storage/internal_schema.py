"""The internal schema ``R* = (R*_1..R*_r, U, V_1..V_r, E, D, S)`` (Sect. 5.1).

For every content relation ``Ri(key_i, att_2, ..., att_l)`` of the external
schema, the internal schema holds:

* ``star_Ri(tid, key_i, att_2, ..., att_l)`` — one row per *distinct ground
  tuple* across all worlds, keyed by the surrogate ``tid`` (the only internal
  key constraint);
* ``v_Ri(wid, tid, key, s, e)`` — the valuation relation: which tuple appears
  in which world, with sign ``s ∈ {'+','-'}`` and explicitness ``e ∈ {'y','n'}``
  (explicitly annotated vs. implied by the message board assumption).

Plus the world-management relations shared by all content relations:

* ``U(uid, name)`` — registered users;
* ``E(wid1, uid, wid2)`` — the accessibility edges of the canonical Kripke
  structure, one per (world, user) with ``wid2 = wid(dss(path·uid))``;
* ``D(wid, d)`` — nesting depth of each world;
* ``S(wid1, wid2)`` — the deepest-suffix-state backlink
  ``S(wid(w), wid(dss(w[2,d])))`` (per the Appendix C.3 errata), i.e. each
  world's parent in the inverted suffix tree along which defaults propagate.

Signs and flags use the paper's literal values ``'+'/'-'`` and ``'y'/'n'`` so
that dumps line up with Fig. 5.
"""

from __future__ import annotations

from repro.core.schema import ExternalSchema, RelationDef
from repro.relational.database import RelationalDatabase
from repro.relational.schema import TableSchema

#: Literal sign values stored in V, matching the paper's figures.
SIGN_POS = "+"
SIGN_NEG = "-"
#: Literal explicitness flags stored in V.
EXPLICIT_YES = "y"
EXPLICIT_NO = "n"

#: The root world id (the paper's world ``#0``).
ROOT_WID = 0

U_TABLE = "U"
E_TABLE = "E"
D_TABLE = "D"
S_TABLE = "S"


def star_table_name(relation: str) -> str:
    """Name of the internal tuple-store table for ``relation`` (``R*_i``)."""
    return f"star_{relation}"


def v_table_name(relation: str) -> str:
    """Name of the internal valuation table for ``relation`` (``V_i``)."""
    return f"v_{relation}"


def star_schema(relation: RelationDef) -> TableSchema:
    return TableSchema(
        star_table_name(relation.name),
        ("tid",) + relation.attributes,
        key=("tid",),
    )


def v_schema(relation: RelationDef) -> TableSchema:
    return TableSchema(
        v_table_name(relation.name),
        ("wid", "tid", "key", "s", "e"),
    )


def create_internal_tables(
    engine: RelationalDatabase, schema: ExternalSchema
) -> None:
    """Create all internal tables and their hot indexes on ``engine``.

    Indexes mirror the paper's setup ("clustered indexes are available over
    the internal keys"): V is probed by ``(wid, key)`` during updates and by
    ``(wid,)`` during queries; E by ``(wid1, uid)`` for the E*-chains of
    Algorithm 1.
    """
    engine.create_table(TableSchema(U_TABLE, ("uid", "name"), key=("uid",)))
    engine.create_table(TableSchema(E_TABLE, ("wid1", "uid", "wid2")))
    engine.create_table(TableSchema(D_TABLE, ("wid", "d"), key=("wid",)))
    engine.create_table(TableSchema(S_TABLE, ("wid1", "wid2"), key=("wid1",)))
    engine.table(E_TABLE).create_index(("wid1", "uid"))
    for relation in schema.content_relations:
        engine.create_table(star_schema(relation))
        v = engine.create_table(v_schema(relation))
        v.create_index(("wid", "key"))
        v.create_index(("wid",))
        v.create_index(("tid",))

"""Multi-version concurrency control over the belief store.

The MVCC layer turns the mutable :class:`~repro.storage.store.BeliefStore`
into a sequence of immutable **versions**. The live store advances through
integer *epochs* — every committed write bumps the epoch — and readers
**pin** a version: a copy-on-write fork of the store frozen at pin time
(:meth:`BeliefStore.fork_snapshot`). Pinned reads therefore never take the
write lock and never observe a concurrent writer's effects; a scan started
at epoch *N* returns the epoch-*N* state no matter how many commits land
mid-scan.

Lifecycle of a version:

1. **build** — the first pin at a given epoch forks the live store (under
   the manager's mutex; O(registries), the row dicts stay shared);
2. **share** — later pins at the same epoch reuse the cached fork, each
   incrementing its pin count;
3. **retire** — a write bumps the epoch, so the version stops being
   current; it survives while readers still hold pins;
4. **GC** — once its pin count reaches zero and it is no longer current,
   the version is dropped (``mvcc_gc_reclaimed_total`` counts these). The
   current epoch's version stays cached even at zero pins so back-to-back
   reads with no interleaved write share one snapshot.

Each version lazily owns a private :class:`SqliteMirror` for the
``"sqlite"`` query backend — the first sqlite read per version pays one
sync — which is what removes that backend's historical read-to-exclusive
lock promotion.

Metrics (all under the shared registry): ``beliefdb_mvcc_live_versions``,
``beliefdb_mvcc_active_pins`` (gauges), ``beliefdb_mvcc_pins_total``,
``beliefdb_mvcc_gc_reclaimed_total``, ``beliefdb_mvcc_snapshot_builds_total``
(counters), and ``beliefdb_mvcc_snapshot_build_seconds`` (histogram).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.obs.clock import monotonic_s

if TYPE_CHECKING:  # pragma: no cover — type-only imports (avoid cycles)
    from repro.obs.metrics import MetricsRegistry
    from repro.relational.sqlite_backend import SqliteMirror
    from repro.storage.store import BeliefStore


class Version:
    """One immutable snapshot of the store, pinned by zero or more readers.

    ``store`` is a copy-on-write fork frozen at ``epoch``; treat it as
    read-only. ``pins`` is managed by the owning :class:`VersionManager`
    under its mutex. The sqlite mirror is built on first use and shared by
    every reader of this version (its own lock serializes them — sqlite
    connections are not concurrency-friendly).
    """

    __slots__ = ("epoch", "store", "pins", "_mirror", "_mirror_lock")

    def __init__(self, epoch: int, store: "BeliefStore") -> None:
        self.epoch = epoch
        self.store = store
        self.pins = 0
        self._mirror: "SqliteMirror | None" = None
        # RLock: callers hold it across sync + query (one mirror, many
        # reader threads); synced_mirror re-enters it harmlessly.
        self._mirror_lock = threading.RLock()

    def synced_mirror(self) -> "SqliteMirror":
        """This version's sqlite mirror, synced exactly once (lazily)."""
        from repro.relational.sqlite_backend import SqliteMirror

        with self._mirror_lock:
            if self._mirror is None:
                mirror = SqliteMirror()
                mirror.sync(self.store.engine)
                self._mirror = mirror
            return self._mirror

    @property
    def mirror_lock(self) -> threading.RLock:
        """Serializes query execution on the shared per-version mirror."""
        return self._mirror_lock

    def close(self) -> None:
        """Release non-GC'able resources (the sqlite connection, if built)."""
        with self._mirror_lock:
            if self._mirror is not None:
                self._mirror.close()
                self._mirror = None

    def __repr__(self) -> str:
        return f"<Version epoch={self.epoch} pins={self.pins}>"


class VersionManager:
    """Epoch counter + version cache + pin accounting + GC.

    Owned by a :class:`~repro.bdms.bdms.BeliefDBMS`; the BDMS bumps the
    epoch after every committed write and pins versions for every read.
    The manager never holds a reference to the live store (the BDMS can
    replace it wholesale on restore/rollback) — ``pin`` receives it.
    """

    def __init__(self, metrics: "MetricsRegistry | None" = None) -> None:
        self._mutex = threading.Lock()
        self._epoch = 0
        self._versions: dict[int, Version] = {}
        self._stats = {
            "pins_total": 0,
            "snapshot_builds": 0,
            "gc_reclaimed": 0,
        }
        self._pins_counter: Any = None
        self._gc_counter: Any = None
        self._builds_counter: Any = None
        self._build_hist: Any = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        registry.gauge(
            "beliefdb_mvcc_live_versions",
            "Store versions currently cached (current + still-pinned).",
        ).set_function(lambda: len(self._versions))
        registry.gauge(
            "beliefdb_mvcc_active_pins",
            "Reader pins currently held across all live versions.",
        ).set_function(self.active_pins)
        self._pins_counter = registry.counter(
            "beliefdb_mvcc_pins_total",
            "Version pins ever taken by readers.",
        )
        self._gc_counter = registry.counter(
            "beliefdb_mvcc_gc_reclaimed_total",
            "Retired store versions reclaimed by the version GC.",
        )
        self._builds_counter = registry.counter(
            "beliefdb_mvcc_snapshot_builds_total",
            "Copy-on-write snapshot forks built (first pin per epoch).",
        )
        self._build_hist = registry.histogram(
            "beliefdb_mvcc_snapshot_build_seconds",
            "Time to fork a copy-on-write snapshot of the store.",
        )

    # ------------------------------------------------------------------ epochs

    @property
    def epoch(self) -> int:
        """The current epoch (bumped by every committed write)."""
        return self._epoch

    def bump(self) -> int:
        """Advance the epoch after a committed write; GC newly-idle versions.

        The caller (the BDMS) invokes this under its write mutex, after the
        mutation is applied — so a pin taken at the new epoch forks the
        post-write state.
        """
        with self._mutex:
            self._epoch += 1
            self._gc_locked()
            return self._epoch

    # -------------------------------------------------------------------- pins

    def pin(self, store: "BeliefStore") -> Version:
        """Pin (and build, if first) the version of the current epoch.

        ``store`` must be the live store observed under the caller's write
        mutex (or any context in which no write can land concurrently), so
        the fork really is the epoch's frozen state. Pair every pin with a
        :meth:`release`.
        """
        with self._mutex:
            version = self._versions.get(self._epoch)
            if version is None:
                start = monotonic_s()
                version = Version(self._epoch, store.fork_snapshot())
                self._versions[self._epoch] = version
                self._stats["snapshot_builds"] += 1
                if self._builds_counter is not None:
                    self._builds_counter.inc()
                    self._build_hist.observe(monotonic_s() - start)
            version.pins += 1
            self._stats["pins_total"] += 1
        if self._pins_counter is not None:
            self._pins_counter.inc()
        return version

    def release(self, version: Version) -> None:
        """Drop one pin; GC the version when retired and no longer pinned."""
        with self._mutex:
            version.pins -= 1
            self._gc_locked()

    @contextmanager
    def pinned(self, store: "BeliefStore") -> Iterator[Version]:
        """``with versions.pinned(db.store) as v:`` — pin, yield, release."""
        version = self.pin(store)
        try:
            yield version
        finally:
            self.release(version)

    # ---------------------------------------------------------------------- GC

    def _gc_locked(self) -> None:
        """Reclaim retired, unpinned versions. Caller holds the mutex."""
        doomed = [
            epoch
            for epoch, version in self._versions.items()
            if version.pins <= 0 and epoch != self._epoch
        ]
        for epoch in doomed:
            self._versions.pop(epoch).close()
        if doomed:
            self._stats["gc_reclaimed"] += len(doomed)
            if self._gc_counter is not None:
                self._gc_counter.inc(len(doomed))

    def invalidate(self) -> None:
        """Forget every cached version (live store replaced wholesale).

        Used by restore / rollback-rebuild: the epoch advances so already
        pinned versions stay valid for their readers, but no new pin may
        reuse a fork of the discarded store.
        """
        with self._mutex:
            self._epoch += 1
            self._gc_locked()

    # ------------------------------------------------------------------- views

    def live_versions(self) -> int:
        with self._mutex:
            return len(self._versions)

    def active_pins(self) -> int:
        with self._mutex:
            return sum(v.pins for v in self._versions.values())

    def snapshot_stats(self) -> dict[str, Any]:
        """JSON-plain counters for ``BeliefDBMS.snapshot_stats()["mvcc"]``."""
        with self._mutex:
            return {
                "epoch": self._epoch,
                "live_versions": len(self._versions),
                "active_pins": sum(v.pins for v in self._versions.values()),
                **self._stats,
            }

    def __repr__(self) -> str:
        return (
            f"<VersionManager epoch={self._epoch} "
            f"live={len(self._versions)}>"
        )

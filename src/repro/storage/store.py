"""The belief store: stateful owner of the internal representation (Sect. 5).

A :class:`BeliefStore` owns the relational engine holding the internal schema
(``star_Ri``, ``v_Ri``, ``U``, ``E``, ``D``, ``S``), plus in-memory registries
(world ids, user ids, tuple ids, the inverted suffix tree) that the update
algorithms of Sect. 5.3 need. The actual algorithms — ``idWorld`` (Alg. 2),
``dss`` (Alg. 3), ``insertTuple`` (Alg. 4), deletes — live in
:mod:`repro.storage.updates` and operate on a store.

Two materialization modes (Sect. 6.3):

* ``eager`` (the paper's default): the valuation tables hold the *entailed*
  worlds — every implicit belief is materialized with ``e='n'``. Queries
  translate straight to joins over ``V`` (Algorithm 1).
* ``lazy`` (the paper's future-work alternative): only explicit annotations
  are stored; the default rule is applied at query time
  (:mod:`repro.query.lazy`). The database stays small, queries do more work.

The store also keeps a mirror :class:`~repro.core.database.BeliefDatabase` of
the explicit statements. It is the source of truth for consistency checks in
tests, powers lazy evaluation via the core closure, and supports rebuilding.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.closure import entailed_world as core_entailed_world
from repro.core.database import BeliefDatabase
from repro.core.paths import (
    ROOT_PATH,
    BeliefPath,
    User,
    can_extend,
    validate_path,
)
from repro.core.schema import ExternalSchema, GroundTuple, Value
from repro.core.statements import NEGATIVE, POSITIVE, BeliefStatement, Sign
from repro.core.worlds import BeliefWorld
from repro.errors import (
    SchemaError,
    UnknownUserError,
    UnknownWorldError,
)
from repro.lifecycle.registry import LifecycleRegistry
from repro.relational.database import RelationalDatabase
from repro.relational.table import Row, Table
from repro.storage.internal_schema import (
    D_TABLE,
    E_TABLE,
    EXPLICIT_NO,
    EXPLICIT_YES,
    ROOT_WID,
    S_TABLE,
    SIGN_NEG,
    SIGN_POS,
    U_TABLE,
    create_internal_tables,
    star_table_name,
    v_table_name,
)


def sign_to_str(sign: Sign) -> str:
    return SIGN_POS if sign is POSITIVE else SIGN_NEG


def str_to_sign(s: str) -> Sign:
    return POSITIVE if s == SIGN_POS else NEGATIVE


class BeliefStore:
    """Stateful internal representation of one belief database."""

    def __init__(
        self,
        schema: ExternalSchema,
        eager: bool = True,
        auto_index: bool = True,
    ) -> None:
        self.schema = schema
        self.eager = eager
        self.engine = RelationalDatabase(auto_index=auto_index)
        create_internal_tables(self.engine, schema)

        #: Mirror of the explicit annotations as a core belief database.
        self.explicit_db = BeliefDatabase(schema=schema)

        # World registry (mirrors D and S, plus the path mapping that the
        # relational representation keeps implicit in E).
        self._wid_by_path: dict[BeliefPath, int] = {ROOT_PATH: ROOT_WID}
        self._path_by_wid: dict[int, BeliefPath] = {ROOT_WID: ROOT_PATH}
        self._depth: dict[int, int] = {ROOT_WID: 0}
        self._s_parent: dict[int, int] = {}
        self._s_children: dict[int, set[int]] = defaultdict(set)
        self._next_wid = 1
        self.engine.table(D_TABLE).insert((ROOT_WID, 0))

        # Edge registry mirroring E: wid -> {uid -> wid}.
        self._edges: dict[int, dict[User, int]] = {ROOT_WID: {}}

        # User registry mirroring U.
        self._users: dict[User, str] = {}
        self._uid_by_name: dict[str, User] = {}
        self._next_uid = 1

        # Tuple registry mirroring the star tables.
        self._tid_by_tuple: dict[GroundTuple, int] = {}
        self._tuple_by_tid: dict[int, GroundTuple] = {}
        self._next_tid = 1

        #: Lifecycle records + audit log for the explicit statements
        #: (:mod:`repro.lifecycle`); mutated only via the BDMS write path.
        self.lifecycle = LifecycleRegistry()

    # ------------------------------------------------------------- snapshots

    def fork_snapshot(self) -> "BeliefStore":
        """An immutable-by-convention copy-on-write fork of the whole store.

        The engine tables and the explicit mirror fork copy-on-write (rows
        stay shared until one side mutates); the small registries are copied
        eagerly — O(worlds + users + tuples) dict copies, paid once per
        pinned version, never per write. The result is a fully functional
        :class:`BeliefStore`, so every query backend evaluates against it
        unchanged; the MVCC layer (:mod:`repro.storage.mvcc`) hands these
        out as pinned versions and mutates only the live store.
        """
        fork = BeliefStore.__new__(BeliefStore)
        fork.schema = self.schema
        fork.eager = self.eager
        fork.engine = self.engine.snapshot_fork()
        fork.explicit_db = self.explicit_db.snapshot_fork()
        fork._wid_by_path = dict(self._wid_by_path)
        fork._path_by_wid = dict(self._path_by_wid)
        fork._depth = dict(self._depth)
        fork._s_parent = dict(self._s_parent)
        fork._s_children = defaultdict(
            set, {k: set(v) for k, v in self._s_children.items()}
        )
        fork._next_wid = self._next_wid
        fork._edges = {wid: dict(per) for wid, per in self._edges.items()}
        fork._users = dict(self._users)
        fork._uid_by_name = dict(self._uid_by_name)
        fork._next_uid = self._next_uid
        fork._tid_by_tuple = dict(self._tid_by_tuple)
        fork._tuple_by_tid = dict(self._tuple_by_tid)
        fork._next_tid = self._next_tid
        fork.lifecycle = self.lifecycle.fork()
        return fork

    # ------------------------------------------------------------------ users

    def add_user(self, name: str | None = None, uid: User | None = None) -> User:
        """Register a user: a ``U`` row plus Kripke edges from every world.

        For a fresh user every edge targets the deepest suffix state of
        ``path·uid``, which is the root — the "new user Dora" rule of
        Sect. 3.2/5.3. Returns the user id (auto-assigned int when omitted).
        """
        if uid is None:
            uid = self._next_uid
            while uid in self._users:
                uid += 1
        if uid in self._users:
            raise SchemaError(f"user id {uid!r} already registered")
        self._next_uid = (uid + 1) if isinstance(uid, int) else self._next_uid
        display = name if name is not None else str(uid)
        if display in self._uid_by_name:
            raise SchemaError(f"user name {display!r} already registered")
        self._users[uid] = display
        self._uid_by_name[display] = uid
        self.engine.table(U_TABLE).insert((uid, display))
        self.explicit_db.register_user(uid)
        edge_table = self.engine.table(E_TABLE)
        for wid, path in self._path_by_wid.items():
            if can_extend(path, uid):
                target = self.wid_of_dss(path + (uid,))
                edge_table.insert((wid, uid, target))
                self._edges[wid][uid] = target
        return uid

    def users(self) -> dict[User, str]:
        return dict(self._users)

    def uid_for_name(self, name: str) -> User:
        try:
            return self._uid_by_name[name]
        except KeyError:
            raise UnknownUserError(f"no user named {name!r}") from None

    def user_name(self, uid: User) -> str:
        try:
            return self._users[uid]
        except KeyError:
            raise UnknownUserError(f"no user with id {uid!r}") from None

    def has_user(self, uid: User) -> bool:
        return uid in self._users

    def resolve_user(self, ref: Value) -> User:
        """Resolve a user reference that may be a uid or a display name."""
        if ref in self._users:
            return ref
        if isinstance(ref, str) and ref in self._uid_by_name:
            return self._uid_by_name[ref]
        raise UnknownUserError(f"unknown user reference {ref!r}")

    def _check_path_users(self, path: BeliefPath) -> None:
        for uid in path:
            if uid not in self._users:
                raise UnknownUserError(
                    f"belief path mentions unregistered user {uid!r}"
                )

    # ------------------------------------------------------------------ worlds

    def wid_for_path(self, path: BeliefPath) -> int | None:
        return self._wid_by_path.get(path)

    def path_for_wid(self, wid: int) -> BeliefPath:
        try:
            return self._path_by_wid[wid]
        except KeyError:
            raise UnknownWorldError(f"unknown world id {wid}") from None

    def depth_of(self, wid: int) -> int:
        return self._depth[wid]

    def world_count(self) -> int:
        return len(self._path_by_wid)

    def states(self) -> frozenset[BeliefPath]:
        return frozenset(self._wid_by_path)

    def wid_of_dss(self, path: BeliefPath) -> int:
        """World id of the deepest suffix state of ``path`` (registry walk).

        The relational formulation of the same computation (Alg. 3) is in
        :func:`repro.storage.updates.dss_relational`; tests assert agreement.
        """
        for i in range(len(path) + 1):
            wid = self._wid_by_path.get(path[i:])
            if wid is not None:
                return wid
        raise UnknownWorldError("root world missing — corrupted store")

    def s_parent(self, wid: int) -> int | None:
        """The world's deepest-suffix-state backlink (``S``), None for root."""
        return self._s_parent.get(wid)

    def s_children(self, wid: int) -> frozenset[int]:
        return frozenset(self._s_children.get(wid, ()))

    def dependents_by_depth(self, wid: int) -> list[int]:
        """All worlds whose path has this world's path as proper suffix.

        These are exactly the transitive children in the inverted suffix tree
        (the ``S``-tree), returned shallowest-first so that propagation can
        assume parents are up to date (Alg. 4's "in ascending order of r").
        """
        found: list[int] = []
        frontier = list(self._s_children.get(wid, ()))
        while frontier:
            found.extend(frontier)
            frontier = [
                child for parent in frontier
                for child in self._s_children.get(parent, ())
            ]
        found.sort(key=self._depth.__getitem__)
        return found

    def register_world(self, path: BeliefPath, s_parent_wid: int) -> int:
        """Create registry + D/S rows for a new world. Used by ``idWorld``."""
        wid = self._next_wid
        self._next_wid += 1
        self._wid_by_path[path] = wid
        self._path_by_wid[wid] = path
        self._depth[wid] = len(path)
        self.engine.table(D_TABLE).insert((wid, len(path)))
        self.engine.table(S_TABLE).insert((wid, s_parent_wid))
        self._s_parent[wid] = s_parent_wid
        self._s_children[s_parent_wid].add(wid)
        self._edges[wid] = {}
        return wid

    def repoint_s_parent(self, wid: int, new_parent: int) -> None:
        """Move ``wid`` under a new parent in the S-tree (world creation)."""
        old = self._s_parent.get(wid)
        if old == new_parent:
            return
        if old is not None:
            self._s_children[old].discard(wid)
        self._s_parent[wid] = new_parent
        self._s_children[new_parent].add(wid)
        s = self.engine.table(S_TABLE)
        s.delete_matching({0: wid})
        s.insert((wid, new_parent))

    # ------------------------------------------------------------------ edges

    def edge_target(self, wid: int, uid: User) -> int:
        try:
            return self._edges[wid][uid]
        except KeyError:
            raise UnknownWorldError(
                f"no {uid!r}-edge from world {wid} "
                f"(path {self._path_by_wid.get(wid)!r})"
            ) from None

    def set_edge(self, wid: int, uid: User, target: int) -> None:
        """Insert or redirect the unique (wid, uid) edge, in E and registry."""
        edge_table = self.engine.table(E_TABLE)
        if uid in self._edges[wid]:
            edge_table.delete_matching({0: wid, 1: uid})
        edge_table.insert((wid, uid, target))
        self._edges[wid][uid] = target

    def resolve_path(self, path: BeliefPath) -> int:
        """Walk ``path`` from the root along edges; the landing world's
        content is ``D̄_path`` for any valid path (Thm. 17)."""
        validate_path(path)
        self._check_path_users(path)
        wid = ROOT_WID
        for uid in path:
            wid = self.edge_target(wid, uid)
        return wid

    # ------------------------------------------------------------------ tuples

    def tid_for(self, t: GroundTuple, create: bool = False) -> int | None:
        """The internal key of a ground tuple, optionally creating a star row."""
        tid = self._tid_by_tuple.get(t)
        if tid is not None or not create:
            return tid
        self.schema.validate(t)
        tid = self._next_tid
        self._next_tid += 1
        self._tid_by_tuple[t] = tid
        self._tuple_by_tid[tid] = t
        self.engine.table(star_table_name(t.relation)).insert((tid,) + t.values)
        return tid

    def tuple_for_tid(self, tid: int) -> GroundTuple:
        return self._tuple_by_tid[tid]

    def v_table(self, relation: str) -> Table:
        return self.engine.table(v_table_name(relation))

    def star_table(self, relation: str) -> Table:
        return self.engine.table(star_table_name(relation))

    # V columns: (wid, tid, key, s, e)
    def v_rows_for_key(self, wid: int, relation: str, key: Value) -> list[Row]:
        return list(self.v_table(relation).match_named(wid=wid, key=key))

    def v_rows_for_world(self, wid: int, relation: str | None = None) -> list[Row]:
        if relation is not None:
            return list(self.v_table(relation).match_named(wid=wid))
        rows: list[Row] = []
        for rel in self.schema.content_relations:
            rows.extend(self.v_table(rel.name).match_named(wid=wid))
        return rows

    def insert_v(
        self, relation: str, wid: int, tid: int, key: Value, s: str, e: str
    ) -> None:
        self.v_table(relation).insert((wid, tid, key, s, e))

    def delete_v(self, relation: str, **bound: Value) -> int:
        table = self.v_table(relation)
        positions = {
            table.schema.column_index(col): val for col, val in bound.items()
        }
        return table.delete_matching(positions)

    # ------------------------------------------------------------------ content

    def state_world(self, wid: int) -> BeliefWorld:
        """The belief world stored at ``wid`` (eager mode: the entailed world)."""
        pos: list[GroundTuple] = []
        neg: list[GroundTuple] = []
        for rel in self.schema.content_relations:
            for _, tid, _, s, _ in self.v_table(rel.name).match_named(wid=wid):
                (pos if s == SIGN_POS else neg).append(self._tuple_by_tid[tid])
        return BeliefWorld(frozenset(pos), frozenset(neg))

    def entailed_world(self, path: BeliefPath) -> BeliefWorld:
        """``D̄_path`` — from V in eager mode, via the core closure when lazy."""
        if self.eager:
            return self.state_world(self.resolve_path(path))
        validate_path(path)
        self._check_path_users(path)
        return core_entailed_world(self.explicit_db, path)

    def world_content(
        self, path: BeliefPath
    ) -> list[tuple[GroundTuple, Sign, bool]]:
        """Entailed content of the world at ``path`` with explicitness flags."""
        world = self.entailed_world(path)
        explicit = self.explicit_db.explicit_signs(path)
        out = [(t, POSITIVE, (t, POSITIVE) in explicit) for t in world.positives]
        out += [(t, NEGATIVE, (t, NEGATIVE) in explicit) for t in world.negatives]
        return out

    # ------------------------------------------------------------------ stats

    def total_rows(self) -> int:
        """``|R*|``: total tuples across all internal tables (Sect. 5.4)."""
        return self.engine.total_rows()

    def row_counts(self) -> dict[str, int]:
        return self.engine.row_counts()

    def relative_overhead(self, annotation_count: int) -> float:
        """The paper's ``|R*|/n`` measure (Sect. 5.4, Table 1, Fig. 6)."""
        if annotation_count <= 0:
            raise ValueError("annotation count must be positive")
        return self.total_rows() / annotation_count

    # ------------------------------------------------------------------ dumps

    def explicit_statements(self) -> Iterator[BeliefStatement]:
        return iter(self.explicit_db.statements())

    def to_belief_database(self) -> BeliefDatabase:
        """A fresh core belief database holding the explicit annotations."""
        return BeliefDatabase(
            self.explicit_db.statements(),
            schema=self.schema,
            users=self._users.keys(),
        )

    # -------------------------------------------------------------- invariants

    def check_invariants(self) -> None:
        """Deep self-check used by the test-suite (registry vs. tables vs. core).

        Verifies that D/S/E mirror the registries, that every eager world's V
        content equals the core closure of the explicit statements, and that
        explicitness flags match. Raises AssertionError on any mismatch.
        """
        d_rows = set(map(tuple, self.engine.table(D_TABLE)))
        assert d_rows == {
            (wid, self._depth[wid]) for wid in self._path_by_wid
        }, "D table out of sync with registry"
        s_rows = set(map(tuple, self.engine.table(S_TABLE)))
        assert s_rows == set(self._s_parent.items()), "S table out of sync"
        e_rows = set(map(tuple, self.engine.table(E_TABLE)))
        expected_edges = {
            (wid, uid, target)
            for wid, per_user in self._edges.items()
            for uid, target in per_user.items()
        }
        assert e_rows == expected_edges, "E table out of sync with registry"
        for wid, path in self._path_by_wid.items():
            for uid in self._users:
                if can_extend(path, uid):
                    assert self._edges[wid].get(uid) == self.wid_of_dss(
                        path + (uid,)
                    ), f"edge ({wid},{uid}) does not target the dss"
            if path != ROOT_PATH:
                assert self._s_parent[wid] == self.wid_of_dss(
                    path[1:]
                ), f"S backlink of world {wid} is not the dss of the suffix"
        if not self.eager:
            return
        for wid, path in self._path_by_wid.items():
            stored = self.state_world(wid)
            expected = core_entailed_world(self.explicit_db, path)
            assert stored == expected, (
                f"world {wid} ({path!r}): V content {stored} "
                f"!= closure {expected}"
            )
            explicit = self.explicit_db.explicit_signs(path)
            for rel in self.schema.content_relations:
                for _, tid, _, s, e in self.v_table(rel.name).match_named(wid=wid):
                    pair = (self._tuple_by_tid[tid], str_to_sign(s))
                    assert (e == EXPLICIT_YES) == (pair in explicit), (
                        f"world {wid}: explicitness flag wrong for {pair}"
                    )

"""Point-in-time snapshots of BeliefDBMS state.

A snapshot is one JSON file — ``snapshot-<seq>.json`` — holding everything
needed to rebuild the belief database without replaying history: the user
registry and the *explicit* belief statements (the paper's annotations; the
eager materialization is deterministically recomputed by re-inserting them
through Algorithm 4). ``seq`` is the WAL sequence number the snapshot
covers: recovery loads the newest readable snapshot and replays only WAL
records with a higher ``seq``.

Snapshots are written atomically (temp file + ``os.replace`` + directory
fsync), so a crash mid-checkpoint leaves the previous snapshot intact, and
:func:`load_latest_snapshot` falls back to older files when the newest one
is unreadable.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any

from repro.core.statements import BeliefStatement, Sign
from repro.errors import BeliefDBError, DurabilityError
from repro.lifecycle.registry import LifecycleRegistry
from repro.storage.updates import insert_statement

from repro.durability.wal import fsync_directory

SNAPSHOT_FORMAT = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


def snapshot_name(seq: int) -> str:
    return f"snapshot-{seq:012d}.json"


def list_snapshots(directory: str) -> list[tuple[int, str]]:
    """``(seq, absolute_path)`` for every snapshot file, oldest first."""
    found: list[tuple[int, str]] = []
    for entry in os.listdir(directory):
        match = _SNAPSHOT_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, entry)))
    return sorted(found)


def statement_order(statement: Any) -> tuple:
    """Sort key for rebuilding explicit statements shallowest-path-first.

    Shared by snapshot building and the transaction rollback rebuild
    (:meth:`BeliefDBMS._rollback_rebuild`), so the two deterministic
    rebuild paths can never diverge in ordering.
    """
    return (
        len(statement.path), repr(statement.path),
        repr(statement.tuple), str(statement.sign),
    )


def build_snapshot(db: Any, seq: int) -> dict[str, Any]:
    """Serialize a BDMS's users + explicit statements as of WAL ``seq``.

    The optional ``lifecycle`` key carries the lifecycle registry (records
    + the full audit history) when anything is tracked; snapshots from
    before the lifecycle subsystem simply lack the key and restore fine.
    """
    statements = sorted(db.store.explicit_statements(), key=statement_order)
    payload = {
        "format": SNAPSHOT_FORMAT,
        "seq": seq,
        "users": sorted(
            ([uid, name] for uid, name in db.users().items()),
            key=lambda pair: repr(pair[0]),
        ),
        "statements": [
            {
                "path": list(s.path),
                "relation": s.tuple.relation,
                "values": list(s.tuple.values),
                "sign": str(s.sign),
            }
            for s in statements
        ],
        "counts": {
            "annotations": db.annotation_count(),
            "users": len(db.users()),
        },
    }
    lifecycle = db.store.lifecycle
    if lifecycle.record_count() or lifecycle.audit_count():
        payload["lifecycle"] = lifecycle.dump()
    return payload


def write_snapshot(directory: str, payload: dict[str, Any]) -> str:
    """Atomically persist one snapshot; returns its final path."""
    final = os.path.join(directory, snapshot_name(int(payload["seq"])))
    tmp = final + ".tmp"
    with open(tmp, "w", encoding="utf-8") as sink:
        json.dump(payload, sink, separators=(",", ":"))
        sink.flush()
        os.fsync(sink.fileno())
    os.replace(tmp, final)
    fsync_directory(directory)
    return final


def load_latest_snapshot(
    directory: str,
) -> tuple[dict[str, Any] | None, int]:
    """The newest readable snapshot payload and how many were skipped.

    Damaged files (truncated JSON, wrong format) are skipped in favor of the
    next-older snapshot — the atomic write makes damage unlikely, but a
    snapshot must never be a single point of failure for recovery.
    """
    skipped = 0
    for seq, path in reversed(list_snapshots(directory)):
        try:
            with open(path, "r", encoding="utf-8") as source:
                payload = json.load(source)
            if (
                not isinstance(payload, dict)
                or payload.get("format") != SNAPSHOT_FORMAT
                or int(payload["seq"]) != seq
            ):
                raise ValueError("format/seq mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            skipped += 1
            continue
        return payload, skipped
    return None, skipped


def restore_snapshot(db: Any, payload: dict[str, Any]) -> int:
    """Load a snapshot into an *empty* BDMS; returns statements applied.

    Statements are re-inserted shallowest-path-first through the store's
    Algorithm 4, which deterministically rebuilds the eager materialization.
    Every statement of a snapshot taken from a consistent store must be
    re-accepted; a rejection means the snapshot is damaged.
    """
    if db.users() or db.annotation_count():
        raise DurabilityError(
            "snapshot restore requires an empty database "
            f"(found {len(db.users())} users, "
            f"{db.annotation_count()} annotations)"
        )
    for uid, name in payload.get("users", ()):
        db.store.add_user(name=name, uid=uid)
    applied = 0
    for entry in payload.get("statements", ()):
        statement = BeliefStatement(
            tuple(entry["path"]),
            db.schema.tuple(entry["relation"], *entry["values"]),
            Sign.coerce(entry["sign"]),
        )
        if not insert_statement(db.store, statement):
            raise DurabilityError(
                f"snapshot statement rejected on restore: {statement}"
            )
        applied += 1
    counts = payload.get("counts", {})
    if "annotations" in counts and db.annotation_count() != counts["annotations"]:
        raise DurabilityError(
            f"snapshot restore produced {db.annotation_count()} annotations, "
            f"snapshot recorded {counts['annotations']}"
        )
    lifecycle = payload.get("lifecycle")
    if lifecycle is not None:
        try:
            db.store.lifecycle = LifecycleRegistry.from_dump(lifecycle)
        except (BeliefDBError, KeyError, TypeError, ValueError) as exc:
            raise DurabilityError(
                f"snapshot lifecycle section is damaged: {exc}"
            ) from exc
    db._mirror_dirty = True
    db.invalidate_statements()
    return applied


def prune_snapshots(directory: str, keep: int) -> int:
    """Delete all but the newest ``keep`` snapshots; returns removed count."""
    snapshots = list_snapshots(directory)
    removed = 0
    for _, path in snapshots[: max(0, len(snapshots) - max(1, keep))]:
        try:
            os.remove(path)
            removed += 1
        except OSError:
            pass
    return removed

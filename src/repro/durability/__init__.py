"""Durability: write-ahead log + snapshots + crash recovery (layer 10).

The in-memory :class:`~repro.bdms.bdms.BeliefDBMS` evaporates on process
exit; this package makes it survive. Three pieces:

* :mod:`repro.durability.wal` — length-prefixed, CRC-guarded JSON record
  frames in rotating segment files, with configurable fsync policies;
* :mod:`repro.durability.snapshot` — atomic point-in-time dumps of the user
  registry + explicit belief statements;
* :mod:`repro.durability.manager` / :mod:`repro.durability.recovery` — the
  :class:`DurabilityManager` gluing them together: recovery = newest
  snapshot + WAL-tail replay through the BDMS prepared-statement cache (the
  bulk-restore fast path), logging = fsync'd append before every
  acknowledgement, checkpoint = snapshot + prune.

Typical use::

    from repro.bdms.bdms import BeliefDBMS
    from repro.durability import DurabilityManager

    db = BeliefDBMS(schema, durability=DurabilityManager("./data"))
    ...                    # every accepted write is WAL-logged
    db.checkpoint()        # bound future recovery time
    db.close()

or, one level up, ``repro.api.connect(schema, data_dir="./data")`` and
``python -m repro serve --data-dir ./data``.
"""

from repro.durability.manager import DurabilityManager
from repro.durability.recovery import (
    RecoveryReport,
    ReplayStats,
    replay_records,
)
from repro.durability.snapshot import (
    build_snapshot,
    load_latest_snapshot,
    restore_snapshot,
    write_snapshot,
)
from repro.durability.wal import (
    MAX_RECORD_BYTES,
    SegmentScan,
    WalWriter,
    encode_record,
    list_segments,
    scan_bytes,
    scan_segment,
    segment_name,
)

__all__ = [
    "DurabilityManager",
    "RecoveryReport",
    "ReplayStats",
    "replay_records",
    "build_snapshot",
    "load_latest_snapshot",
    "restore_snapshot",
    "write_snapshot",
    "MAX_RECORD_BYTES",
    "SegmentScan",
    "WalWriter",
    "encode_record",
    "list_segments",
    "scan_bytes",
    "scan_segment",
    "segment_name",
]

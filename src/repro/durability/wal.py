"""Write-ahead log segments: length-prefixed, CRC-guarded JSON frames.

The WAL is a directory of *segment* files, each a concatenation of records::

    +----------------+----------------+------------------------+
    | length (4B BE) | crc32  (4B BE) | payload (UTF-8 JSON)   |
    +----------------+----------------+------------------------+

``length`` counts payload bytes only; ``crc32`` is over the payload. Each
payload is one JSON object carrying a monotonically increasing ``"seq"``
plus the operation fields (see :mod:`repro.durability.recovery`).

Segments are named ``wal-<first_seq>.seg`` after the sequence number of the
first record they hold, so the covered range of any segment is evident from
the directory listing alone: segment *i* covers ``[first_seq_i,
first_seq_{i+1})`` and is safe to delete once a snapshot covers it.

Reading **fails soft at the tail and hard everywhere else**: a truncated or
CRC-mismatched record ends the scan (a crash mid-``write`` leaves exactly
such a torn tail, and the torn record was by construction never
acknowledged), while callers that find a damaged record *followed by more
segments* treat it as real corruption — that policy lives in
:class:`~repro.durability.manager.DurabilityManager`, not here. This module
never raises on damaged bytes; it reports how far the segment was valid.
"""

from __future__ import annotations

import json
import os
import re
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import DurabilityError

_HEADER = struct.Struct(">II")

#: Ceiling on one record's payload. Generous for bound SQL statements, small
#: enough that a garbage length prefix cannot make recovery allocate wildly.
MAX_RECORD_BYTES = 8 << 20

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 << 20

_SEGMENT_RE = re.compile(r"^wal-(\d{12})\.seg$")

#: Supported fsync policies for :class:`WalWriter`.
SYNC_MODES = ("always", "batch", "off")


def segment_name(first_seq: int) -> str:
    return f"wal-{first_seq:012d}.seg"


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(first_seq, absolute_path)`` for every segment, in seq order."""
    found: list[tuple[int, str]] = []
    for entry in os.listdir(directory):
        match = _SEGMENT_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, entry)))
    return sorted(found)


# ------------------------------------------------------------------- encoding


def encode_record(payload: dict[str, Any]) -> bytes:
    """Serialize one record: header (length, crc32) + JSON body."""
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise DurabilityError(
            f"WAL record is not JSON-serializable: {exc}"
        ) from exc
    if len(body) > MAX_RECORD_BYTES:
        raise DurabilityError(
            f"WAL record of {len(body)} bytes exceeds "
            f"MAX_RECORD_BYTES ({MAX_RECORD_BYTES})"
        )
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


@dataclass
class SegmentScan:
    """What one segment file held: the valid prefix and how it ended."""

    path: str
    records: list[dict[str, Any]] = field(default_factory=list)
    #: Start byte of each record in ``records`` — recovery truncates an
    #: uncommitted transaction tail at the offset of its ``txn_begin``.
    offsets: list[int] = field(default_factory=list)
    #: Bytes of the file occupied by valid records (truncation point).
    valid_bytes: int = 0
    #: True when the file ended exactly at a record boundary.
    clean: bool = True
    #: Why the scan stopped early (None when clean).
    error: str | None = None


def scan_bytes(data: bytes, path: str = "<memory>") -> SegmentScan:
    """Decode records until the data ends or a record fails validation."""
    scan = SegmentScan(path=path)
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            return _stop(scan, offset, "truncated header at end of segment")
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return _stop(
                scan, offset,
                f"record length {length} exceeds MAX_RECORD_BYTES",
            )
        body_start = offset + _HEADER.size
        if body_start + length > total:
            return _stop(
                scan, offset,
                f"truncated record body ({total - body_start}/{length} bytes)",
            )
        body = data[body_start:body_start + length]
        if zlib.crc32(body) != crc:
            return _stop(scan, offset, "CRC mismatch")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _stop(scan, offset, f"invalid JSON: {exc}")
        if not isinstance(payload, dict):
            return _stop(scan, offset, "record payload is not a JSON object")
        scan.records.append(payload)
        scan.offsets.append(offset)
        offset = body_start + length
        scan.valid_bytes = offset
    return scan


def _stop(scan: SegmentScan, offset: int, reason: str) -> SegmentScan:
    scan.valid_bytes = offset
    scan.clean = False
    scan.error = reason
    return scan


def scan_segment(path: str) -> SegmentScan:
    """Scan one segment file from disk; never raises on damaged content."""
    with open(path, "rb") as source:
        return scan_bytes(source.read(), path=path)


def fsync_directory(directory: str) -> None:
    """Flush directory metadata (new/renamed files) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# --------------------------------------------------------------------- writer


class WalWriter:
    """Appends records to segment files with a configurable fsync policy.

    ``sync`` policies:

    * ``"always"`` — fsync after every append; an acknowledged write survives
      SIGKILL (the durability contract of the server);
    * ``"batch"``  — fsync every ``batch_every`` records and on rotate/close;
      a crash may lose the last unsynced batch, never more;
    * ``"off"``    — OS-buffered only (process crash still safe via the page
      cache, machine crash is not); for bulk loads and benchmarks.

    Rotation happens *before* an append once the current segment holds at
    least ``segment_bytes``; the new segment is named after the sequence
    number of the record that opens it.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        sync: str = "always",
        batch_every: int = 64,
    ) -> None:
        if sync not in SYNC_MODES:
            raise DurabilityError(
                f"unknown sync mode {sync!r}; pick one of {SYNC_MODES}"
            )
        self.directory = directory
        self.segment_bytes = max(1, segment_bytes)
        self.sync = sync
        self.batch_every = max(1, batch_every)
        self._file: Any = None
        self._segment_size = 0
        self._unsynced = 0
        self.records_written = 0
        self.bytes_written = 0
        self.segments_opened = 0
        #: Optional callback observing each fsync's duration in seconds
        #: (a histogram child's ``observe``); set by the durability manager
        #: when metrics are bound. ``None`` costs a single attribute check.
        self.fsync_observer: Any = None

    def _fsync(self) -> None:
        """fsync the open segment, feeding the observer when bound."""
        observer = self.fsync_observer
        if observer is None:
            os.fsync(self._file.fileno())
            return
        from repro.obs.clock import Stopwatch

        watch = Stopwatch()
        os.fsync(self._file.fileno())
        observer(watch.elapsed_s())

    def append(self, payload: dict[str, Any], seq: int) -> int:
        """Encode and append one record; returns its size in bytes."""
        return self.append_batch([(payload, seq)])

    def append_batch(
        self, records: "list[tuple[dict[str, Any], int]]"
    ) -> int:
        """Append ``(payload, seq)`` records with **one** sync decision.

        All frames are written (rotating segments as needed), then the sync
        policy is applied once: ``"always"`` fsyncs once per *batch* rather
        than once per record — the whole point of the batched write path.
        A crash mid-batch leaves a torn tail of frames that were never
        acknowledged (the batch's caller had not returned), so recovery's
        truncate-the-tail rule still holds. Returns total bytes appended.
        """
        if not records:
            return 0
        # Encode everything first: a non-serializable payload must fail the
        # whole batch before any sibling frame reaches the file.
        frames = [(encode_record(payload), seq) for payload, seq in records]
        total = 0
        for frame, seq in frames:
            if self._file is None or self._segment_size >= self.segment_bytes:
                # Rotation fsyncs and closes the previous segment (unless
                # sync="off"), so a batch spanning a rotation still ends
                # with every written byte covered by an fsync.
                self._open_segment(seq)
            self._file.write(frame)
            self._segment_size += len(frame)
            self.records_written += 1
            self.bytes_written += len(frame)
            total += len(frame)
        if self.sync == "always":
            self._file.flush()
            self._fsync()
        else:
            self._file.flush()
            self._unsynced += len(frames)
            if self.sync == "batch" and self._unsynced >= self.batch_every:
                self._fsync()
                self._unsynced = 0
        return total

    def _open_segment(self, first_seq: int) -> None:
        self._sync_and_close()
        path = os.path.join(self.directory, segment_name(first_seq))
        if os.path.exists(path):
            raise DurabilityError(f"segment {path} already exists")
        self._file = open(path, "ab")
        self._segment_size = 0
        self.segments_opened += 1
        fsync_directory(self.directory)

    def _sync_and_close(self) -> None:
        if self._file is None:
            return
        self._file.flush()
        if self.sync != "off":
            self._fsync()
        self._file.close()
        self._file = None
        self._unsynced = 0

    def flush(self) -> None:
        """Force buffered records to stable storage (regardless of policy)."""
        if self._file is not None:
            self._file.flush()
            self._fsync()
            self._unsynced = 0

    def close(self) -> None:
        self._sync_and_close()

    @property
    def closed(self) -> bool:
        return self._file is None


def append_records(
    directory: str, records: Iterable[dict[str, Any]], sync: str = "off"
) -> None:
    """Test/tooling helper: write records (carrying ``seq``) to a fresh WAL."""
    writer = WalWriter(directory, sync=sync)
    try:
        for record in records:
            writer.append(record, int(record["seq"]))
    finally:
        writer.close()

"""Replay WAL records into a BeliefDBMS — the bulk-restore fast path.

WAL records mirror the server op log's shapes (see
:mod:`repro.server.server`), with one durability-specific refinement: SQL
writes are stored as *template + parameters* (``{"op": "execute", "sql":
"insert into BELIEF ? ...", "params": [...]}``) rather than as bound
literal SQL. Replay feeds them back through
:meth:`~repro.bdms.bdms.BeliefDBMS.execute_sql`, so the BDMS
prepared-statement LRU collapses every repetition of a template into one
parse + one compile — recovering a 50k-op log costs ~as many parses as
there are *distinct statements*, not as many as there are records. The
statement-level records (``add_user`` / ``insert`` / ``delete``, from
programmatic clients) skip SQL entirely.

Replay is strict: only *accepted* operations are ever logged, so a record
that fails to re-apply on the snapshot base means the log and snapshot
disagree — recovery raises rather than silently diverging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import BeliefDBError, DurabilityError


@dataclass
class ReplayStats:
    """What one recovery replay applied."""

    records: int = 0
    add_users: int = 0
    inserts: int = 0
    deletes: int = 0
    executes: int = 0
    lifecycle_ops: int = 0
    rows_affected: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


@dataclass
class RecoveryReport:
    """Everything a recovery did, JSON-serializable for stats/logging."""

    snapshot_seq: int = 0
    snapshot_statements: int = 0
    snapshots_skipped: int = 0
    wal_records: int = 0
    torn_tail_bytes: int = 0
    #: Records of an unterminated txn group discarded (and truncated) at
    #: the WAL tail — a crash mid-commit; none of them was acknowledged.
    uncommitted_txn_records: int = 0
    elapsed_ms: float = 0.0
    replay: ReplayStats = field(default_factory=ReplayStats)

    def as_dict(self) -> dict[str, Any]:
        out = dict(vars(self))
        out["replay"] = self.replay.as_dict()
        return out


def replay_records(
    db: Any, records: Iterable[dict[str, Any]]
) -> ReplayStats:
    """Re-apply WAL records serially; raises on any divergence.

    The caller (the durability manager) suppresses WAL logging on ``db``
    while this runs — replayed operations must not be re-logged.
    """
    stats = ReplayStats()
    for record in records:
        stats.records += 1
        op = record.get("op")
        seq = record.get("seq")
        try:
            if op == "add_user":
                db.add_user(name=record["name"], uid=record["uid"])
                stats.add_users += 1
            elif op in ("insert", "delete"):
                func = db.insert if op == "insert" else db.delete
                ok = func(
                    record["path"], record["relation"], record["values"],
                    record["sign"],
                )
                if not ok:
                    raise DurabilityError(f"logged {op} re-rejected")
                stats.inserts += op == "insert"
                stats.deletes += op == "delete"
            elif op == "execute":
                result = db.execute_sql(
                    record["sql"], tuple(record.get("params", ()))
                )
                if result.rowcount < 1:
                    raise DurabilityError(
                        "logged statement affected no rows on replay"
                    )
                stats.executes += 1
                stats.rows_affected += result.rowcount
            elif op == "lifecycle":
                # The record carries its own timestamps, and the registry's
                # apply path is deterministic — replay rebuilds the exact
                # audit history the live write produced.
                db.apply_lifecycle_record(record)
                stats.lifecycle_ops += 1
            else:
                raise DurabilityError(f"unknown WAL op {op!r}")
        except DurabilityError:
            raise DurabilityError(
                f"WAL replay diverged at seq {seq}: {record!r}"
            ) from None
        except BeliefDBError as exc:
            raise DurabilityError(
                f"WAL replay failed at seq {seq}: {exc}"
            ) from exc
    return stats

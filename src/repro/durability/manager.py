"""The durability manager: data-dir layout, logging, checkpoints, recovery.

One :class:`DurabilityManager` owns one *data directory*::

    <data_dir>/
        LOCK                        advisory flock; held while attached
        wal/wal-<first_seq>.seg     write-ahead log segments
        snapshots/snapshot-<seq>.json

Lifecycle: construct the manager, pass it to
:class:`~repro.bdms.bdms.BeliefDBMS` (``durability=``), and the BDMS calls
:meth:`recover` to rebuild state (newest snapshot + WAL tail replay), then
routes every accepted write through :meth:`log` *before the operation
returns* — with the default ``sync="always"`` policy an acknowledged write
has been fsync'd, so SIGKILL at any instant loses nothing acknowledged.

:meth:`checkpoint` snapshots current state at the last logged sequence
number, then prunes WAL segments and old snapshots the new snapshot makes
redundant. Checkpoints bound recovery time; the ``checkpoint_every`` knob
(ops between automatic checkpoints) and the server's background checkpoint
thread both land here.

Single-writer discipline is enforced with an advisory ``flock`` on
``<data_dir>/LOCK``: a second process (or a second manager in this process)
opening the same directory fails fast instead of interleaving segments. The
kernel releases the lock when the process dies, so a SIGKILL'd server never
bricks its data directory.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from repro.errors import DurabilityError, WalCorruptionError
from repro.obs.clock import Stopwatch

from repro.durability import snapshot as snap
from repro.durability import wal
from repro.durability.recovery import RecoveryReport, replay_records

try:  # pragma: no cover — fcntl is present on every POSIX target we support
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]


class DurabilityManager:
    """Persistence engine for one data directory (see module docstring).

    Parameters
    ----------
    data_dir:
        Directory to create/open. Created (with parents) when missing.
    sync:
        WAL fsync policy — ``"always"`` (default; ack implies durable),
        ``"batch"``, or ``"off"``. See :class:`~repro.durability.wal.WalWriter`.
    segment_bytes:
        WAL segment rotation threshold.
    checkpoint_every:
        Automatic checkpoint after this many logged records (0 disables;
        time-based checkpoints are the server's job).
    keep_snapshots:
        Snapshots retained after a checkpoint (the newest always survives).
    """

    def __init__(
        self,
        data_dir: str,
        sync: str = "always",
        segment_bytes: int = wal.DEFAULT_SEGMENT_BYTES,
        checkpoint_every: int = 0,
        keep_snapshots: int = 2,
        batch_every: int = 64,
    ) -> None:
        self.data_dir = os.path.abspath(data_dir)
        self.wal_dir = os.path.join(self.data_dir, "wal")
        self.snapshot_dir = os.path.join(self.data_dir, "snapshots")
        os.makedirs(self.wal_dir, exist_ok=True)
        os.makedirs(self.snapshot_dir, exist_ok=True)
        self.sync = sync
        self.checkpoint_every = max(0, checkpoint_every)
        self.keep_snapshots = max(1, keep_snapshots)
        self._lock = threading.RLock()
        self._lock_file = self._acquire_dir_lock()
        self._writer = wal.WalWriter(
            self.wal_dir, segment_bytes=segment_bytes, sync=sync,
            batch_every=batch_every,
        )
        self._closed = False
        self._failed: str | None = None
        # Set by bind_metrics(); None keeps the hot path observation-free.
        self._append_timer: Any = None
        self._batch_sizes: Any = None
        self.last_seq = 0
        self.last_checkpoint_seq = 0
        self.records_since_checkpoint = 0
        self.checkpoints = 0
        self.transactions_logged = 0
        self.last_recovery: RecoveryReport | None = None

    # ------------------------------------------------------------ dir locking

    def _acquire_dir_lock(self) -> Any:
        path = os.path.join(self.data_dir, "LOCK")
        handle = open(path, "a+")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise DurabilityError(
                    f"data directory {self.data_dir} is locked by another "
                    "process (or another DurabilityManager)"
                ) from None
        return handle

    # ---------------------------------------------------------------- metrics

    def bind_metrics(self, registry: Any) -> None:
        """Register WAL instruments on ``registry`` and start observing.

        Called by :meth:`BeliefDBMS.attach_durability` so durability metrics
        land in the same registry as statement and server metrics.
        Idempotent: re-binding (even to a different registry) simply swaps
        the observation targets. Never binding keeps every hot path at a
        single ``is None`` check.
        """
        from repro.obs.metrics import COUNT_BUCKETS

        self._append_timer = registry.histogram(
            "beliefdb_wal_append_seconds",
            "Whole WAL batch append latency (encode + write + fsync).",
        )
        self._batch_sizes = registry.histogram(
            "beliefdb_wal_batch_records",
            "Records per WAL append batch.",
            buckets=COUNT_BUCKETS,
        )
        fsync_hist = registry.histogram(
            "beliefdb_wal_fsync_seconds",
            "Time spent inside os.fsync on WAL segment files.",
        )
        self._writer.fsync_observer = fsync_hist.observe

    # --------------------------------------------------------------- recovery

    def recover(self, db: Any) -> RecoveryReport:
        """Rebuild ``db`` (which must be empty) from snapshot + WAL tail.

        Tolerates a torn tail in the *final* segment (truncated to the last
        valid record — a torn record was never acknowledged); refuses on any
        other damage (:class:`WalCorruptionError`), because that would mean
        silently dropping acknowledged history.
        """
        self._ensure_open()
        if db.users() or db.annotation_count():
            raise DurabilityError(
                "recovery requires an empty database (attach durability at "
                "construction time, or use BeliefDBMS.restore())"
            )
        started = time.perf_counter()
        report = RecoveryReport()
        db._in_recovery = True
        try:
            payload, report.snapshots_skipped = snap.load_latest_snapshot(
                self.snapshot_dir
            )
            base_seq = 0
            if payload is not None:
                report.snapshot_statements = snap.restore_snapshot(db, payload)
                base_seq = int(payload["seq"])
                report.snapshot_seq = base_seq
            tail, origins = self._scan_wal_tail(base_seq, report)
            tail, replayable = self._resolve_transactions(
                tail, origins, report
            )
            report.wal_records = len(tail)
            report.replay = replay_records(db, replayable)
            self.last_seq = tail[-1]["seq"] if tail else base_seq
            self.last_checkpoint_seq = base_seq
            self.records_since_checkpoint = len(tail)
        finally:
            db._in_recovery = False
        report.elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.last_recovery = report
        return report

    def _scan_wal_tail(
        self, base_seq: int, report: RecoveryReport
    ) -> tuple[list[dict[str, Any]], list[tuple[str, int]]]:
        """Records with seq > base_seq (plus each record's file origin);
        truncates a torn final segment."""
        segments = wal.list_segments(self.wal_dir)
        tail: list[dict[str, Any]] = []
        origins: list[tuple[str, int]] = []
        expected = None
        for index, (first_seq, path) in enumerate(segments):
            scan = wal.scan_segment(path)
            if scan.clean and not scan.records:
                # A crash between segment rotation and the first record
                # write leaves an empty segment named after a seq that was
                # never logged; drop it or it would collide with the next
                # append's segment.
                os.remove(path)
                continue
            if not scan.clean:
                if index != len(segments) - 1:
                    raise WalCorruptionError(
                        f"segment {path} is damaged ({scan.error}) but is "
                        "not the final segment — acknowledged history would "
                        "be lost"
                    )
                report.torn_tail_bytes = (
                    os.path.getsize(path) - scan.valid_bytes
                )
                self._truncate_segment(path, scan.valid_bytes)
            for record, offset in zip(scan.records, scan.offsets):
                seq = record.get("seq")
                if not isinstance(seq, int):
                    raise WalCorruptionError(
                        f"record without integer seq in {path}: {record!r}"
                    )
                if expected is not None and seq != expected:
                    raise WalCorruptionError(
                        f"sequence gap in WAL: expected {expected}, "
                        f"found {seq} in {path}"
                    )
                expected = seq + 1
                if seq > base_seq:
                    tail.append(record)
                    origins.append((path, offset))
        if tail and tail[0]["seq"] != base_seq + 1:
            # The snapshot we recovered from (possibly an older fallback)
            # needs every record after its seq; a tail that starts later
            # means those records were pruned or lost, and "recovering"
            # would silently drop acknowledged history.
            raise WalCorruptionError(
                f"WAL tail starts at seq {tail[0]['seq']} but the snapshot "
                f"covers through {base_seq} — records "
                f"{base_seq + 1}..{tail[0]['seq'] - 1} are missing"
            )
        return tail, origins

    def _resolve_transactions(
        self,
        tail: list[dict[str, Any]],
        origins: list[tuple[str, int]],
        report: RecoveryReport,
    ) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
        """Strip txn framing; discard (and truncate away) an uncommitted tail.

        A committed transaction appears as ``txn_begin``, its statement
        records, ``txn_commit`` — all appended as one batch under the
        committer's write serialization, so an *unterminated* group can
        only be the physical tail of the log: the crash landed mid-append,
        after some complete frames were already on disk but before the
        commit marker. Those records were never acknowledged (the commit
        call had not returned), so they are discarded **and truncated from
        the segment file** — otherwise the next append would bury them
        mid-log where a later recovery could no longer tell them apart
        from committed history. An unterminated group anywhere else, or a
        ``txn_commit`` with no open group, is real corruption.

        Returns ``(surviving_records, replayable_records)`` — the second
        with the marker records removed.
        """
        replayable: list[dict[str, Any]] = []
        pending: list[dict[str, Any]] | None = None
        pending_index = 0
        for i, record in enumerate(tail):
            op = record.get("op")
            if op == "txn_begin":
                if pending is not None:
                    raise WalCorruptionError(
                        f"nested txn_begin at seq {record.get('seq')}"
                    )
                pending = []
                pending_index = i
            elif op == "txn_commit":
                if pending is None:
                    raise WalCorruptionError(
                        f"txn_commit without txn_begin at seq "
                        f"{record.get('seq')}"
                    )
                replayable.extend(pending)
                pending = None
            elif pending is not None:
                pending.append(record)
            else:
                replayable.append(record)
        if pending is None:
            return tail, replayable
        report.uncommitted_txn_records = len(tail) - pending_index
        begin_path, begin_offset = origins[pending_index]
        self._truncate_uncommitted(begin_path, begin_offset)
        return tail[:pending_index], replayable

    def _truncate_uncommitted(self, path: str, offset: int) -> None:
        """Erase everything from ``path``@``offset`` to the end of the WAL.

        The uncommitted group may have spanned a rotation (``append_batch``
        rotates mid-batch), so any segment *after* ``path`` goes entirely.
        """
        doomed = [
            seg_path
            for _, seg_path in wal.list_segments(self.wal_dir)
            if seg_path > path
        ]
        for seg_path in doomed:
            os.remove(seg_path)
        self._truncate_segment(path, offset)

    def _truncate_segment(self, path: str, valid_bytes: int) -> None:
        if valid_bytes <= 0:
            os.remove(path)
        else:
            with open(path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        wal.fsync_directory(self.wal_dir)

    # ---------------------------------------------------------------- logging

    def log(self, entry: dict[str, Any]) -> int:
        """Assign the next sequence number and append the record durably.

        Callers serialize writes themselves (the server's writer lock; a
        single-threaded embedded caller); the internal lock only protects
        the manager's own counters against checkpoint threads.
        """
        return self.log_batch([entry])[0]

    def log_batch(self, entries: "list[dict[str, Any]]") -> list[int]:
        """Append records with consecutive seqs and **one** sync decision.

        The durable half of the batched execution path
        (:meth:`BeliefDBMS.execute_batch`) — and, via :meth:`log`, the
        single-record path too. On an append failure the manager goes
        **fail-stop**: the caller already applied these operations in
        memory, so memory is now ahead of the log, and accepting any
        further write would let *logged* history depend on an *unlogged*
        op and brick recovery with a replay divergence. Refusing all
        future writes keeps the disk state a consistent (if older)
        prefix; the failed records were never acknowledged — the
        exception propagates — so the durability contract holds: restart
        and recover from disk. Returns the assigned seqs.
        """
        if not entries:
            return []
        with self._lock:
            self._ensure_open()
            first = self.last_seq + 1
            last = first + len(entries) - 1
            records = [
                ({"seq": first + i, **entry}, first + i)
                for i, entry in enumerate(entries)
            ]
            try:
                if self._append_timer is None:
                    self._writer.append_batch(records)
                else:
                    watch = Stopwatch()
                    self._writer.append_batch(records)
                    self._append_timer.observe(watch.elapsed_s())
                    self._batch_sizes.observe(len(entries))
            except Exception as exc:
                seq_desc = (
                    f"seq {first}" if first == last else f"seqs {first}..{last}"
                )
                self._failed = f"WAL append for {seq_desc} failed: {exc}"
                try:
                    self._writer.close()
                except Exception:  # noqa: BLE001 — same broken disk
                    pass
                raise DurabilityError(self._failed) from exc
            self.last_seq = last
            self.records_since_checkpoint += len(entries)
            return [seq for _, seq in records]

    def log_transaction(self, entries: "list[dict[str, Any]]") -> list[int]:
        """Append one committed transaction durably: framed, one fsync.

        The records travel as a single :meth:`log_batch` —
        ``txn_begin`` + the statement records + ``txn_commit`` with
        consecutive seqs and **one** sync decision, so a commit costs one
        fsync regardless of how many statements it groups. Recovery treats
        the group atomically: a crash that tears the append anywhere
        before the commit marker discards the whole group
        (:meth:`_resolve_transactions`), so a partially-persisted commit
        is never replayed. Returns the assigned seqs (markers included).
        """
        if not entries:
            return []
        with self._lock:
            self._ensure_open()
            begin_seq = self.last_seq + 1
            records = [
                {"op": "txn_begin", "count": len(entries)},
                *entries,
                {"op": "txn_commit", "begin": begin_seq},
            ]
            seqs = self.log_batch(records)
            self.transactions_logged += 1
            return seqs

    def should_checkpoint(self) -> bool:
        """Has ``checkpoint_every`` elapsed since the last checkpoint?"""
        return (
            self.checkpoint_every > 0
            and self.records_since_checkpoint >= self.checkpoint_every
        )

    # ------------------------------------------------------------ checkpoints

    def checkpoint(self, db: Any) -> int:
        """Snapshot ``db`` at the current seq; prune covered WAL segments.

        The caller must hold whatever lock serializes writes to ``db`` (the
        server takes its exclusive writer lock), so the snapshot observes a
        consistent state that includes every logged record up to
        ``last_seq`` and nothing beyond it.
        """
        with self._lock:
            self._ensure_open()
            seq = self.last_seq
            snap.write_snapshot(self.snapshot_dir, snap.build_snapshot(db, seq))
            snap.prune_snapshots(self.snapshot_dir, self.keep_snapshots)
            # Prune the WAL only back to the *oldest retained* snapshot, not
            # the one just written: recovery falls back to an older snapshot
            # when the newest file is damaged, and that fallback needs the
            # WAL records since *its* seq to still exist. keep_snapshots=1
            # degenerates to pruning at the new snapshot's seq.
            retained = snap.list_snapshots(self.snapshot_dir)
            self._prune_wal(retained[0][0] if retained else seq)
            self.last_checkpoint_seq = seq
            self.records_since_checkpoint = 0
            self.checkpoints += 1
            return seq

    def _prune_wal(self, snapshot_seq: int) -> int:
        """Remove segments wholly covered by the snapshot.

        Segment *i* covers ``[first_seq_i, first_seq_{i+1})``, so it is
        redundant exactly when the next segment starts at or below
        ``snapshot_seq + 1``. The newest segment is always kept (it is the
        append target).
        """
        segments = wal.list_segments(self.wal_dir)
        removed = 0
        for (first_seq, path), (next_first, _) in zip(segments, segments[1:]):
            if next_first <= snapshot_seq + 1:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        if removed:
            wal.fsync_directory(self.wal_dir)
        return removed

    # ------------------------------------------------------------------ stats

    def stats(self) -> dict[str, Any]:
        """JSON-serializable durability counters (for ``snapshot_stats``)."""
        with self._lock:
            segments = wal.list_segments(self.wal_dir)
            out: dict[str, Any] = {
                "data_dir": self.data_dir,
                "sync": self.sync,
                "last_seq": self.last_seq,
                "last_checkpoint_seq": self.last_checkpoint_seq,
                "records_since_checkpoint": self.records_since_checkpoint,
                "checkpoints": self.checkpoints,
                "checkpoint_every": self.checkpoint_every,
                "transactions_logged": self.transactions_logged,
                "wal_segments": len(segments),
                "wal_bytes": sum(
                    os.path.getsize(path)
                    for _, path in segments
                    if os.path.exists(path)
                ),
                "wal_records_written": self._writer.records_written,
                "snapshots": len(snap.list_snapshots(self.snapshot_dir)),
            }
            if self.last_recovery is not None:
                out["last_recovery"] = self.last_recovery.as_dict()
            return out

    # -------------------------------------------------------------- lifecycle

    @property
    def failed(self) -> bool:
        """True after a WAL append failure put the manager in fail-stop."""
        return self._failed is not None

    def ensure_writable(self) -> None:
        """Raise unless this manager can durably log another write.

        The BDMS calls this *before* mutating in-memory state, so a
        failed-stop or closed manager refuses writes without first applying
        them — memory never drifts further than the single operation whose
        append originally failed (and that one was never acknowledged).
        """
        self._ensure_open()

    def _ensure_open(self) -> None:
        if self._failed is not None:
            raise DurabilityError(
                f"durability manager is failed-stop ({self._failed}); "
                "restart the process and recover from disk"
            )
        if self._closed:
            raise DurabilityError("durability manager is closed")

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._writer.flush()

    def close(self) -> None:
        """Flush and release the directory lock. Does **not** checkpoint —
        close is crash-equivalent by design (recovery must work either way);
        callers wanting a fast next startup checkpoint first."""
        with self._lock:
            if self._closed:
                return
            self._writer.close()
            if fcntl is not None:
                try:
                    fcntl.flock(self._lock_file.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
            self._lock_file.close()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"<DurabilityManager {self.data_dir} sync={self.sync} "
            f"seq={self.last_seq} ({state})>"
        )

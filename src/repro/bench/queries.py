"""Query-performance experiments: Table 2 and the linear-scaling claim
(Sect. 6.2).

The paper times seven queries over one synthetic belief database (the
running-example schema without Comments):

* ``q1,d`` for d = 0..4 — *content queries*: "what does belief world w
  contain?", with belief paths of increasing depth;
* ``q2`` — a *conflict query*: "which sightings does Bob believe Alice
  believes, which he does not believe himself?"
  (``q2(x,y) :- 2·1 S+(x,z,y,u,v), 2 S−(x,z,y,u,v)``);
* ``q3`` — a *query for users*: "who disagrees with any of user 1's beliefs
  of sightings at <location>?"
  (``q3(x) :- x S−(y,z,u,v,'a'), 1 S+(y,z,u,v,'a')``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.bench.harness import Timing, time_call
from repro.core.statements import NEGATIVE, POSITIVE
from repro.query.bcq import BCQuery, ModalSubgoal, UserAtom, Variable
from repro.query.lazy import evaluate_lazy
from repro.query.sql_gen import evaluate_sql
from repro.query.translate import evaluate_translated
from repro.relational.sqlite_backend import SqliteMirror
from repro.storage.store import BeliefStore
from repro.workload.generator import LOCATIONS, WorkloadConfig, build_store

#: Location constant used by q3 (the paper writes it as 'a').
Q3_LOCATION = LOCATIONS[1]  # "Lake Placid"


def _content_vars() -> tuple[Variable, ...]:
    return tuple(Variable(n) for n in ("k", "z", "sp", "u", "v"))


def content_query(path: tuple[int, ...]) -> BCQuery:
    """``q1,d``: keys and species believed in the world at ``path``."""
    k, z, sp, u, v = _content_vars()
    return BCQuery(
        head=(k, sp),
        subgoals=(
            ModalSubgoal(path, "Sightings", POSITIVE, (k, z, sp, u, v)),
        ),
        name=f"q1_{len(path)}",
    )


def conflict_query(believer: int = 2, about: int = 1) -> BCQuery:
    """``q2``: what ``believer`` thinks ``about`` believes but rejects himself."""
    k, z, sp, u, v = _content_vars()
    return BCQuery(
        head=(k, sp),
        subgoals=(
            ModalSubgoal((believer, about), "Sightings", POSITIVE, (k, z, sp, u, v)),
            ModalSubgoal((believer,), "Sightings", NEGATIVE, (k, z, sp, u, v)),
        ),
        name="q2",
    )


def user_query(about: int = 1, location: str = Q3_LOCATION) -> BCQuery:
    """``q3``: users disagreeing with ``about``'s sightings at ``location``."""
    k, z, sp, u, _ = _content_vars()
    x = Variable("x")
    return BCQuery(
        head=(x,),
        subgoals=(
            ModalSubgoal((x,), "Sightings", NEGATIVE, (k, z, sp, u, location)),
            ModalSubgoal((about,), "Sightings", POSITIVE, (k, z, sp, u, location)),
        ),
        name="q3",
    )


def paper_queries(max_depth: int = 4) -> dict[str, BCQuery]:
    """The seven Table 2 queries, with q1 paths alternating users 1 and 2."""
    queries: dict[str, BCQuery] = {}
    for d in range(max_depth + 1):
        path = tuple((1, 2)[i % 2] for i in range(d))
        queries[f"q1,{d}"] = content_query(path)
    queries["q2"] = conflict_query()
    queries["q3"] = user_query()
    return queries


def build_experiment_store(
    n_annotations: int,
    n_users: int = 10,
    seed: int = 1,
    eager: bool = True,
    participation: str = "zipf",
    depth_distribution: tuple[float, ...] = (0.5, 0.35, 0.15),
) -> BeliefStore:
    """The Table 2 database: one synthetic store with conflicts at all depths."""
    config = WorkloadConfig(
        n_annotations=n_annotations,
        n_users=n_users,
        depth_distribution=depth_distribution,
        participation=participation,
        seed=seed,
    )
    store, _ = build_store(config, eager=eager)
    return store


@dataclass
class QueryMeasurement:
    name: str
    backend: str
    timing: Timing
    result_size: int


def run_query_suite(
    store: BeliefStore,
    queries: dict[str, BCQuery],
    backend: str = "engine",
    repeats: int = 5,
    mirror: SqliteMirror | None = None,
) -> list[QueryMeasurement]:
    """Time each query on one backend; returns sizes for sanity checks.

    ``backend``: "engine" (translated Datalog), "sqlite" (generated SQL on a
    synced mirror), or "lazy" (query-time defaults).
    """
    runner: Callable[[BCQuery], set]
    if backend == "engine":
        runner = lambda q: evaluate_translated(store, q)  # noqa: E731
    elif backend == "sqlite":
        if mirror is None:
            mirror = SqliteMirror()
            mirror.sync(store.engine)
        runner = lambda q: evaluate_sql(store, q, mirror)  # noqa: E731
    elif backend == "lazy":
        runner = lambda q: evaluate_lazy(store, q)  # noqa: E731
    else:
        raise ValueError(f"unknown backend {backend!r}")

    measurements: list[QueryMeasurement] = []
    for name, query in queries.items():
        timing = time_call(lambda q=query: runner(q), repeats=repeats)
        size = len(timing.last_result) if timing.last_result is not None else 0
        measurements.append(QueryMeasurement(name, backend, timing, size))
    return measurements

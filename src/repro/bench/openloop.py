"""An open-loop load generator for the belief server.

Closed-loop harnesses (N clients, each waiting for its response before
sending again) measure a *self-throttling* workload: when the server slows
down, the offered load drops with it, and latency looks deceptively flat.
An **open-loop** generator instead fires requests on a fixed arrival
schedule — ``times[i] = i / rate`` — whether or not earlier requests have
completed. That is how real traffic behaves, and it is the shape of load
under which queueing collapse is visible: once the arrival rate exceeds
service capacity, the queue (and therefore latency) grows without bound.

Two conventions pinned here:

* **Coordinated-omission correction** — each request's latency is measured
  from its *scheduled* arrival time, not from when the sender thread got
  around to sending it. A sender stuck behind a slow response would
  otherwise silently stop offering load and hide the very queueing the
  harness exists to expose.
* **Collapse detection** — the run is split into an early and a late half
  by scheduled time; ``collapsed`` is declared when the late half's p99 is
  ``collapse_factor``× the early half's (and above an absolute floor, so
  microsecond noise cannot trip it). A stable system's percentiles are
  stationary; a collapsing one's grow monotonically.

The harness is transport-agnostic by duck typing: ``client_factory`` is any
zero-argument callable returning an object with ``call(op, **params)`` (and
optionally ``close()``), so unit tests drive it with fakes and benchmarks
with real :class:`~repro.server.client.BeliefClient` connections.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ServerOverloadedError
from repro.obs.clock import monotonic_s
from repro.obs.metrics import percentile

#: Late-half p99 must exceed this many ms before a run can be "collapsed" —
#: a 5× jump from 40µs to 200µs is noise, not queueing.
COLLAPSE_FLOOR_MS = 5.0


@dataclass
class OpenLoopReport:
    """What one open-loop run measured (all latencies in milliseconds)."""

    target_rate: float
    offered: int
    completed: int
    shed: int
    errors: int
    elapsed_s: float
    achieved_rate: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    early_p99_ms: float
    late_p99_ms: float
    collapse_factor: float
    collapsed: bool
    error_types: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "target_rate": self.target_rate,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "errors": self.errors,
            "elapsed_s": round(self.elapsed_s, 4),
            "achieved_rate": round(self.achieved_rate, 2),
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "early_p99_ms": round(self.early_p99_ms, 3),
            "late_p99_ms": round(self.late_p99_ms, 3),
            "collapsed": self.collapsed,
            "error_types": dict(self.error_types),
        }


def run_open_loop(
    client_factory: Callable[[], Any],
    make_op: Callable[[int], tuple[str, dict[str, Any]]],
    *,
    rate: float,
    total_ops: int,
    workers: int = 4,
    collapse_factor: float = 5.0,
) -> OpenLoopReport:
    """Fire ``total_ops`` requests at ``rate``/s; measure what came back.

    ``make_op(i)`` names the i-th request: ``(op, params)``. Requests are
    assigned round-robin to ``workers`` sender threads, each with its own
    client from ``client_factory``; a worker sleeps until a request's
    scheduled time, sends it, and records the **scheduled-to-completion**
    latency (coordinated-omission corrected — see module docstring). A
    request answered with :class:`ServerOverloadedError` counts as ``shed``,
    any other failure as an error; neither contributes a latency sample.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if total_ops <= 0:
        raise ValueError(f"total_ops must be positive, got {total_ops}")
    workers = max(1, min(workers, total_ops))
    schedule = [i / rate for i in range(total_ops)]
    # Per-request (scheduled_offset, latency_ms, outcome); index-addressed so
    # workers never contend on a shared append lock.
    outcomes: list[tuple[float, float, str] | None] = [None] * total_ops
    error_types: dict[str, int] = {}
    error_lock = threading.Lock()
    barrier = threading.Barrier(workers + 1)

    def sender(worker_id: int) -> None:
        client = client_factory()
        try:
            barrier.wait()
            t0 = start_at
            for i in range(worker_id, total_ops, workers):
                scheduled = t0 + schedule[i]
                delay = scheduled - monotonic_s()
                if delay > 0:
                    time.sleep(delay)
                op, params = make_op(i)
                try:
                    client.call(op, **params)
                    status = "ok"
                except ServerOverloadedError:
                    status = "shed"
                except Exception as exc:  # noqa: BLE001 — tally, keep firing
                    status = "error"
                    with error_lock:
                        name = type(exc).__name__
                        error_types[name] = error_types.get(name, 0) + 1
                latency_ms = (monotonic_s() - scheduled) * 1000.0
                outcomes[i] = (schedule[i], latency_ms, status)
        finally:
            close = getattr(client, "close", None)
            if close is not None:
                close()

    threads = [
        threading.Thread(target=sender, args=(w,), daemon=True)
        for w in range(workers)
    ]
    for thread in threads:
        thread.start()
    # Workers park on the barrier while connecting; the start time is taken
    # once every connection is up, immediately before releasing them.
    start_at = monotonic_s()
    barrier.wait()
    for thread in threads:
        thread.join()
    elapsed = max(monotonic_s() - start_at, 1e-9)

    ok = [(sched, ms) for entry in outcomes if entry is not None
          for sched, ms, status in (entry,) if status == "ok"]
    shed = sum(1 for e in outcomes if e is not None and e[2] == "shed")
    errors = sum(1 for e in outcomes if e is not None and e[2] == "error")
    latencies = [ms for _, ms in ok]
    midpoint = schedule[-1] / 2.0
    early = [ms for sched, ms in ok if sched <= midpoint]
    late = [ms for sched, ms in ok if sched > midpoint]
    early_p99 = percentile(early, 0.99)
    late_p99 = percentile(late, 0.99)
    collapsed = (
        bool(early) and bool(late)
        and late_p99 > COLLAPSE_FLOOR_MS
        and late_p99 > collapse_factor * early_p99
    )
    return OpenLoopReport(
        target_rate=rate,
        offered=total_ops,
        completed=len(ok),
        shed=shed,
        errors=errors,
        elapsed_s=elapsed,
        achieved_rate=len(ok) / elapsed,
        mean_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        p50_ms=percentile(latencies, 0.5),
        p95_ms=percentile(latencies, 0.95),
        p99_ms=percentile(latencies, 0.99),
        max_ms=max(latencies) if latencies else 0.0,
        early_p99_ms=early_p99,
        late_p99_ms=late_p99,
        collapse_factor=collapse_factor,
        collapsed=collapsed,
        error_types=error_types,
    )

"""Benchmark support: environment knobs, timing, and table rendering.

The paper's experiments run at n = 10,000 annotations on a commercial RDBMS;
pure-Python defaults are scaled down (n = 1,000) so the full suite finishes in
minutes. The paper-scale runs stay one environment variable away:

* ``BELIEFDB_BENCH_N``        — annotations per database (default 1000)
* ``BELIEFDB_BENCH_REPEATS``  — databases per cell / timing repeats (default 3)
* ``BELIEFDB_BENCH_USERS``    — the "large" user count of Table 1 (default 100)
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {value!r}") from None


def bench_n() -> int:
    """Annotations per generated database (paper: 10,000)."""
    return _env_int("BELIEFDB_BENCH_N", 1000)


def bench_repeats() -> int:
    """Databases averaged per cell (paper: 10) / timing repeats."""
    return _env_int("BELIEFDB_BENCH_REPEATS", 3)


def bench_users_large() -> int:
    """The large user count of Table 1 (paper: 100)."""
    return _env_int("BELIEFDB_BENCH_USERS", 100)


@dataclass
class Timing:
    """Mean/stdev of repeated wall-clock timings, in milliseconds."""

    mean_ms: float
    stdev_ms: float
    repeats: int
    last_result: Any = None

    def __str__(self) -> str:
        return f"{self.mean_ms:8.2f} ± {self.stdev_ms:6.2f} ms (n={self.repeats})"


def time_call(fn: Callable[[], Any], repeats: int = 5) -> Timing:
    """Time ``fn()`` ``repeats`` times; returns millisecond statistics."""
    samples: list[float] = []
    result: Any = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
    return Timing(statistics.mean(samples), stdev, len(samples), result)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned text table (the benchmark output format)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        # Keep resolution for sub-10 values (query times in ms can be tiny).
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)

"""Storage-overhead experiments: Table 1 and Figure 6 (Sect. 6.1).

Both experiments measure the *relative overhead* ``|R*| / n`` — the number of
tuples in the internal representation per belief annotation — as a function of
the user count ``m``, the user-participation distribution, and the depth
distribution ``Pr[k = x]`` of the annotations.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.bench.harness import bench_repeats
from repro.workload.generator import WorkloadConfig, build_store

#: The three depth distributions of Table 1 (Pr[d = 0], Pr[d = 1], Pr[d = 2]).
TABLE1_DEPTH_DISTS: dict[str, tuple[float, float, float]] = {
    "[.33,.33,.33]": (1 / 3, 1 / 3, 1 / 3),
    "[.8,.19,.01]": (0.8, 0.19, 0.01),
    "[.199,.8,.001]": (0.199, 0.8, 0.001),
}

#: The two series of Figure 6 (100 users, uniform participation).
FIGURE6_SERIES: dict[str, tuple[float, float, float]] = {
    "uniform-depth [.33,.33,.33]": (1 / 3, 1 / 3, 1 / 3),
    "skewed-depth [.199,.8,.001]": (0.199, 0.8, 0.001),
}


@dataclass(frozen=True)
class OverheadResult:
    """One measured cell: mean/stdev of ``|R*|/n`` over several seeds."""

    n_annotations: int
    n_users: int
    participation: str
    depth_label: str
    overhead_mean: float
    overhead_stdev: float
    size_mean: float
    worlds_mean: float


def measure_overhead(
    n_annotations: int,
    n_users: int,
    participation: str,
    depth_distribution: Sequence[float],
    depth_label: str = "",
    repeats: int | None = None,
    eager: bool = True,
    seed_base: int = 0,
) -> OverheadResult:
    """Average ``|R*|/n`` over ``repeats`` generated databases.

    The paper averages each Table 1 value over 10 databases with the same
    parameters; ``repeats`` defaults to ``BELIEFDB_BENCH_REPEATS``.
    """
    repeats = bench_repeats() if repeats is None else repeats
    overheads: list[float] = []
    sizes: list[float] = []
    worlds: list[float] = []
    for i in range(max(1, repeats)):
        config = WorkloadConfig(
            n_annotations=n_annotations,
            n_users=n_users,
            depth_distribution=tuple(depth_distribution),
            participation=participation,
            seed=seed_base + i,
        )
        store, stats = build_store(config, eager=eager)
        assert stats.accepted == n_annotations
        overheads.append(store.total_rows() / n_annotations)
        sizes.append(float(store.total_rows()))
        worlds.append(float(store.world_count()))
    return OverheadResult(
        n_annotations=n_annotations,
        n_users=n_users,
        participation=participation,
        depth_label=depth_label or str(tuple(depth_distribution)),
        overhead_mean=statistics.mean(overheads),
        overhead_stdev=statistics.stdev(overheads) if len(overheads) > 1 else 0.0,
        size_mean=statistics.mean(sizes),
        worlds_mean=statistics.mean(worlds),
    )


def table1_grid(
    n_annotations: int,
    user_counts: Iterable[int] = (10, 100),
    repeats: int | None = None,
) -> list[OverheadResult]:
    """The full Table 1 grid: {m} × {Zipf, uniform} × three depth skews."""
    results: list[OverheadResult] = []
    for depth_label, dist in TABLE1_DEPTH_DISTS.items():
        for m in user_counts:
            for participation in ("zipf", "uniform"):
                results.append(
                    measure_overhead(
                        n_annotations,
                        m,
                        participation,
                        dist,
                        depth_label=depth_label,
                        repeats=repeats,
                    )
                )
    return results


def figure6_sweep(
    ns: Sequence[int],
    n_users: int = 100,
    repeats: int | None = None,
) -> dict[str, list[OverheadResult]]:
    """Figure 6: overhead vs. n for the two depth-skew series."""
    out: dict[str, list[OverheadResult]] = {}
    for label, dist in FIGURE6_SERIES.items():
        out[label] = [
            measure_overhead(
                n, n_users, "uniform", dist, depth_label=label, repeats=repeats
            )
            for n in ns
        ]
    return out


def theoretic_bound(n_users: int, max_depth: int) -> int:
    """The paper's worst-case bound ``O(m^dmax)`` on the relative overhead."""
    return n_users ** max_depth

"""Benchmark support for regenerating the paper's tables and figures."""

from repro.bench.harness import (
    Timing,
    bench_n,
    bench_repeats,
    bench_users_large,
    format_table,
    time_call,
)
from repro.bench.overhead import (
    FIGURE6_SERIES,
    TABLE1_DEPTH_DISTS,
    OverheadResult,
    figure6_sweep,
    measure_overhead,
    table1_grid,
    theoretic_bound,
)
from repro.bench.queries import (
    Q3_LOCATION,
    QueryMeasurement,
    build_experiment_store,
    conflict_query,
    content_query,
    paper_queries,
    run_query_suite,
    user_query,
)

__all__ = [
    "FIGURE6_SERIES",
    "OverheadResult",
    "Q3_LOCATION",
    "QueryMeasurement",
    "TABLE1_DEPTH_DISTS",
    "Timing",
    "bench_n",
    "bench_repeats",
    "bench_users_large",
    "build_experiment_store",
    "conflict_query",
    "content_query",
    "figure6_sweep",
    "format_table",
    "measure_overhead",
    "paper_queries",
    "run_query_suite",
    "table1_grid",
    "theoretic_bound",
    "time_call",
]

"""The shard router: one wire endpoint in front of the worker fleet.

The router speaks the exact same wire protocol as a single belief server —
every existing client, ``connect()`` connection, Cursor, and transaction
path works unchanged against it — but executes nothing itself. Each request
is classified and either:

* **routed to one shard** — DML, ``believes``/``world`` lookups, and
  anything else addressed by a belief path. The path *head* (the outermost
  believer) picks the shard via the consistent-hash ring, so a user's whole
  world tree lives together;
* **fanned out to every shard** — selects, BCQ queries, ``worlds``,
  ``users``, ``stats``, ``metrics``; results are merged (and re-paged
  through router-side cursors, so large merged results still stream in
  frame-sized pages);
* **answered locally** — ``ping``, ``whoami``, session state, paging of
  router-held cursors, and the new ``shard_status`` op.

Consistency rules:

* **Users are global.** User creation broadcasts an explicitly-pinned uid
  to every shard, so names and uids resolve identically everywhere; a shard
  that was down during a create is healed on first contact.
* **Transactions are single-shard.** ``begin`` is router-local; the first
  staged DML pins the transaction to its statement's shard; a later
  statement routing elsewhere gets a typed ``CROSS_SHARD_TXN`` error (the
  statement is *not* staged, the transaction stays open and usable).
* **A down shard is a typed error, not a hang.** Routing to an unhealthy or
  restarting shard raises ``SHARD_UNAVAILABLE`` immediately; the
  coordinator's restart brings the shard back with its WAL replayed.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Sequence

from repro.beliefsql.ast import (
    BeliefSpec,
    DeleteStatement,
    InsertStatement,
    Literal,
    SelectStatement,
    Statement,
    UpdateStatement,
)
from repro.beliefsql.parser import parse_beliefsql
from repro.errors import (
    BeliefDBError,
    CrossShardTransactionError,
    LifecycleError,
    SchemaError,
    ShardUnavailableError,
    TransactionError,
    UnknownUserError,
)
from repro.obs.clock import monotonic_s
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_CAPACITY, DEFAULT_THRESHOLD_MS
from repro.server import binproto, protocol
from repro.server.client import (
    BeliefClient,
    ConnectionLost,
    _estimated_row_bytes,
    merge_batch_payload,
)
from repro.server.protocol import Request, Response
from repro.server.server import (
    BeliefServer,
    ClientSession,
    _page_size,
    _require,
)
from repro.shard.coordinator import Coordinator
from repro.shard.partitioning import (
    CONTENT_KEY,
    HashRing,
    path_head,
    statement_head,
)

#: Router-held cursors per session (oldest evicted beyond this) — same
#: bound as the worker-side session cursor registry.
MAX_ROUTER_CURSORS = 32

#: Shard-count buckets for the fan-out histogram (how many shards one
#: request touched). Linear — fleets are small.
_FANOUT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

_DML_TYPES = (InsertStatement, DeleteStatement, UpdateStatement)


@dataclasses.dataclass(frozen=True)
class RouterStatement:
    """A prepared statement as the router sees it: text + parsed form.

    The router keeps the *original* SQL and its AST; the session default
    path is applied at execute time (exactly like the single server's
    prepare-vs-execute split) by rewriting the text and forwarding it
    one-shot — the worker's own statement cache makes re-preparation cheap.
    """

    sql: str
    statement: Statement
    kind: str
    param_count: int
    columns: tuple[str, ...]


class _RouterState:
    """Duck-typed stand-in for the BDMS the base server core expects.

    The router reuses :class:`BeliefServer`'s accept loop, framing, session
    lifecycle, admission control, and instrumentation — everything except
    the database. This stub satisfies the three attributes the inherited
    machinery touches (``metrics``, ``backend``, ``durability``).
    """

    backend = "engine"
    durability = None

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.metrics = registry if registry is not None else MetricsRegistry()


class RouterSession:
    """Router-side state of one client connection.

    Wraps the base :class:`ClientSession` (identity, default path, prepared
    statements) and adds what only the router needs: the *raw* belief path
    for routing (user names, not uids), the per-shard upstream connections,
    the transaction pin, and router-held cursors for merged fan-out results.
    Served by the threaded core, so one session's requests are serial — no
    locking needed here.
    """

    def __init__(self, base: ClientSession) -> None:
        self.base = base
        #: The default path in raw (name) form — what routing hashes on.
        self.raw_path: tuple[Any, ...] = ()
        #: The logged-in user's name (routing key when the path is empty).
        self.user_raw: Any | None = None
        #: shard -> (client, directory epoch at connect time).
        self.upstreams: dict[int, tuple[BeliefClient, int]] = {}
        self.in_txn = False
        #: Shard the open transaction is pinned to (None until first DML).
        self.txn_shard: int | None = None
        #: cursor id -> (merged rows, offset of next unsent row).
        self.cursors: OrderedDict[int, tuple[list, int]] = OrderedDict()
        self._cursor_seq = 0

    # ----------------------------------------------------------- upstreams

    def drop_upstream(self, shard: int) -> None:
        entry = self.upstreams.pop(shard, None)
        if entry is not None:
            try:
                entry[0].close()
            except Exception:  # noqa: BLE001 — already broken
                pass

    def teardown(self) -> bool:
        """Connection died: close upstreams; a pinned transaction dies with
        its upstream connection (the worker discards it). Installed over
        the base session's ``abandon_transaction`` hook."""
        for shard in list(self.upstreams):
            self.drop_upstream(shard)
        had_txn = self.in_txn
        self.in_txn = False
        self.txn_shard = None
        return had_txn

    def reset_txn(self) -> None:
        self.in_txn = False
        self.txn_shard = None

    # ------------------------------------------------------------- cursors

    def register_cursor(self, rows: list, offset: int) -> int:
        self._cursor_seq += 1
        self.cursors[self._cursor_seq] = (rows, offset)
        while len(self.cursors) > MAX_ROUTER_CURSORS:
            self.cursors.popitem(last=False)
        return self._cursor_seq

    def fetch_rows(
        self, cursor_id: Any, count: int, byte_budget: int
    ) -> tuple[list, bool]:
        """Next page, bounded by ``count`` rows AND estimated bytes — a
        merged fan-out result must page under the frame ceiling no matter
        how wide its rows are. Auto-closes at the end, like the worker."""
        entry = self.cursors.get(cursor_id)
        if entry is None:
            raise BeliefDBError(f"unknown cursor {cursor_id!r}")
        rows, offset = entry
        batch, end = _page_slice(rows, offset, count, byte_budget)
        if end < len(rows):
            self.cursors[cursor_id] = (rows, end)
            return batch, True
        del self.cursors[cursor_id]
        return batch, False

    def close_cursor(self, cursor_id: Any) -> bool:
        return self.cursors.pop(cursor_id, None) is not None


def _page_slice(
    rows: list, offset: int, max_rows: int, byte_budget: int
) -> tuple[list, int]:
    """``rows[offset:...]`` capped by row count and estimated wire bytes
    (always at least one row, so paging can never stall)."""
    end = offset
    total = 0
    while end < len(rows) and end - offset < max_rows:
        size = _estimated_row_bytes(rows[end])
        if end > offset and total + size > byte_budget:
            break
        total += size
        end += 1
    return rows[offset:end], end


class BeliefRouter(BeliefServer):
    """The fleet's single wire endpoint (threaded core, no database).

    Inherits all of :class:`BeliefServer`'s networking — accept loop,
    framing with the configurable ceiling, session lifecycle, admission
    control, metrics/slow-op instrumentation — and replaces the dispatch
    layer with routing. Admission exempts ``shard_status`` alongside
    ``ping``/``metrics``: fleet health must be visible under overload.
    """

    shed_exempt_ops = BeliefServer.shed_exempt_ops | {"shard_status"}

    def __init__(
        self,
        coordinator: Coordinator,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int | None = None,
        max_inflight_requests: int | None = None,
        slow_op_ms: float | None = DEFAULT_THRESHOLD_MS,
        slow_op_capacity: int = DEFAULT_CAPACITY,
        max_frame_bytes: int | None = None,
        upstream_timeout: float = 30.0,
        registry: MetricsRegistry | None = None,
        wire: str = "auto",
        upstream_wire: str = "auto",
    ) -> None:
        super().__init__(
            _RouterState(registry),  # type: ignore[arg-type] — duck-typed stub
            host=host, port=port,
            max_sessions=max_sessions,
            max_inflight_requests=max_inflight_requests,
            slow_op_ms=slow_op_ms, slow_op_capacity=slow_op_capacity,
            max_frame_bytes=max_frame_bytes,
            wire=wire,
        )
        self.coordinator = coordinator
        self.ring = HashRing(coordinator.n_shards)
        self.upstream_timeout = upstream_timeout
        #: Codec preference for router->worker hops; negotiated per upstream
        #: connection, independently of whatever each client negotiated.
        self.upstream_wire = binproto.check_wire_mode(upstream_wire)
        #: The global user registry mirror: every create goes through the
        #: router (broadcast with a pinned uid), so these maps converge to
        #: the union of every shard's user table.
        self._users_by_name: dict[str, Any] = {}
        self._users_by_uid: dict[Any, str] = {}
        self._user_lock = threading.Lock()
        self._fanout_hist = self.metrics.histogram(
            "beliefdb_router_fanout_shards",
            "Shards touched by one fanned-out (scatter-gather) request.",
            buckets=_FANOUT_BUCKETS,
        )
        self._forward_hist = self.metrics.histogram(
            "beliefdb_router_forward_seconds",
            "Upstream round-trip latency per forwarded request, by shard.",
            labels=("shard",),
        )
        self._forward_counter = self.metrics.counter(
            "beliefdb_router_forwards_total",
            "Requests forwarded to workers, by shard and outcome.",
            labels=("shard", "status"),
        )

    # ------------------------------------------------------------- dispatch

    def _router_session(self, session: ClientSession) -> RouterSession:
        rsession = getattr(session, "router_state", None)
        if rsession is None:
            rsession = RouterSession(session)
            session.router_state = rsession  # type: ignore[attr-defined]
            # The serve loop calls abandon_transaction() when the
            # connection dies — hook upstream teardown into it.
            session.abandon_transaction = rsession.teardown  # type: ignore[method-assign]
        return rsession

    def _dispatch_inner(
        self, session: ClientSession, request: Request
    ) -> Response:
        handler = _ROUTER_HANDLERS.get(request.op)
        if handler is None or request.op not in protocol.OPS:
            with self._state_lock:
                self.stats["op_errors"] += 1
            return Response.failure(
                request.id,
                BeliefDBError(f"unknown operation {request.op!r}"),
            )
        rsession = self._router_session(session)
        try:
            result = handler(self, rsession, request.params)
            with self._state_lock:
                self.stats["ops_served"] += 1
            return Response.success(request.id, result)
        except Exception as exc:  # noqa: BLE001 — every op error travels back
            with self._state_lock:
                self.stats["op_errors"] += 1
            return Response.failure(request.id, exc)

    # ------------------------------------------------------------ upstreams

    def _upstream(self, rsession: RouterSession, shard: int) -> BeliefClient:
        """The session's connection to one shard, rebuilt when the
        directory epoch moved (worker restarted) or the socket died."""
        address, epoch = self.coordinator.directory.lookup(shard)
        cached = rsession.upstreams.get(shard)
        if cached is not None:
            client, cached_epoch = cached
            if cached_epoch == epoch and not client.closed:
                return client
            rsession.drop_upstream(shard)
        try:
            client = BeliefClient(
                *address, connect_retries=3, retry_delay=0.05,
                timeout=self.upstream_timeout, auto_reconnect=False,
                max_frame_bytes=self.max_frame_bytes,
                wire=self.upstream_wire,
            )
        except (ConnectionLost, OSError) as exc:
            raise ShardUnavailableError(
                f"shard {shard} refused a connection ({exc}); the worker "
                "may be restarting — retry"
            ) from exc
        rsession.upstreams[shard] = (client, epoch)
        return client

    def _forward(
        self, rsession: RouterSession, shard: int, op: str, **params: Any
    ) -> Any:
        return self._forward_fn(
            rsession, shard, op, lambda client: client.call(op, **params)
        )

    def _forward_fn(
        self,
        rsession: RouterSession,
        shard: int,
        op: str,
        fn: Any,
    ) -> Any:
        """Run ``fn(upstream_client)`` with shard bookkeeping: latency and
        outcome metrics, connection-loss translation to SHARD_UNAVAILABLE,
        and the unknown-user self-heal for shards that missed a create."""
        status = "ok"
        start = monotonic_s()
        try:
            client = self._upstream(rsession, shard)
            try:
                return fn(client)
            except UnknownUserError:
                if not self._heal_users(client):
                    raise
                return fn(client)
        except ConnectionLost as exc:
            rsession.drop_upstream(shard)
            if rsession.in_txn and rsession.txn_shard == shard:
                # The upstream transaction died with its connection; the
                # worker discards it. Clear the pin so the session is not
                # stuck addressing a transaction that no longer exists.
                rsession.reset_txn()
            status = "unavailable"
            raise ShardUnavailableError(
                f"shard {shard} connection lost mid-request ({exc}); the "
                "worker may be restarting — the request is safe to retry"
            ) from exc
        except ShardUnavailableError:
            status = "unavailable"
            raise
        except Exception:
            status = "error"
            raise
        finally:
            elapsed = monotonic_s() - start
            label = str(shard)
            self._forward_counter.labels(shard=label, status=status).inc()
            self._forward_hist.labels(shard=label).observe(elapsed)

    def _heal_users(self, client: BeliefClient) -> bool:
        """Replay the router's user registry onto one worker.

        A shard that was down during user creation missed the broadcast;
        the first op that trips over the gap lands here. Re-registering
        with pinned uids is idempotent (already-registered raises
        SchemaError, which just means that entry is fine)."""
        healed = False
        for name, uid in list(self._users_by_name.items()):
            try:
                client.call("add_user", name=name, uid=uid)
                healed = True
            except SchemaError:
                pass  # already there — converged
            except BeliefDBError:
                return healed
        return healed

    def _fanout(
        self,
        rsession: RouterSession,
        op: str,
        shards: Sequence[int] | None = None,
        **params: Any,
    ) -> list[tuple[int, Any]]:
        """Scatter one read to ``shards`` (default: every shard); raises
        SHARD_UNAVAILABLE if any target is down (a partial read would
        silently drop worlds)."""
        if shards is None:
            shards = list(range(self.ring.n_shards))
        results = [
            (shard, self._forward(rsession, shard, op, **params))
            for shard in shards
        ]
        self._fanout_hist.observe(float(len(shards)))
        return results

    # -------------------------------------------------------------- routing

    def _route_key(self, head: Any) -> Any:
        """Normalize a path head for the ring: uids hash as their user's
        name (both spellings of one user must land on one shard)."""
        if not isinstance(head, str):
            name = self._users_by_uid.get(head)
            if name is not None:
                return name
        elif head in self._users_by_name:
            return head
        return head

    def _raw_effective(
        self, rsession: RouterSession, raw_path: Sequence[Any] | None
    ) -> tuple[Any, ...]:
        if raw_path is None:
            return rsession.raw_path
        return tuple(raw_path)

    def _shard_for_path(
        self, rsession: RouterSession, raw_path: Sequence[Any] | None
    ) -> int:
        head = path_head(raw_path, rsession.raw_path, rsession.user_raw)
        return self.ring.shard_for(self._route_key(head))

    def _select_shards(
        self,
        rsession: RouterSession,
        statement: SelectStatement,
        bind: Sequence[Any],
    ) -> list[int]:
        """The shards a select's worlds live on.

        Every from item names exactly one world — the content world when
        it carries no BELIEF prefix — and a world is resident on exactly
        one shard. So the common single-world select forwards to one
        shard with exact single-node semantics, and only a select joining
        worlds that happen to live on different shards fans out.
        """
        shards = set()
        for item in statement.items:
            # Prefix-less from items read the plain content world — the
            # session default path applies to DML only, never to reads.
            head = statement_head(item.belief.path, tuple(bind), (), None)
            shards.add(self.ring.shard_for(self._route_key(head)))
        return sorted(shards) or [self.ring.shard_for(CONTENT_KEY)]

    def _shard_for_statement(
        self,
        rsession: RouterSession,
        statement: Statement,
        bind: Sequence[Any],
    ) -> int:
        belief = getattr(statement, "belief", None)
        path = belief.path if belief is not None else ()
        head = statement_head(
            path, tuple(bind), rsession.raw_path, rsession.user_raw
        )
        return self.ring.shard_for(self._route_key(head))

    def _rewrite(
        self, rsession: RouterSession, statement: Statement
    ) -> Statement:
        """Prepend the session default path to prefix-less DML — the router
        version of ``ClientSession.rewrite``, using raw *names* so the
        forwarded text resolves identically on any worker."""
        if not rsession.raw_path:
            return statement
        if not isinstance(statement, _DML_TYPES):
            return statement
        if statement.belief.path:
            return statement
        spec = BeliefSpec(
            path=tuple(Literal(user) for user in rsession.raw_path),
            negated=statement.belief.negated,
        )
        return dataclasses.replace(statement, belief=spec)

    # ---------------------------------------------------------------- users

    def _remember_user(self, uid: Any, name: str) -> None:
        self._users_by_name[name] = uid
        self._users_by_uid[uid] = name

    def _refresh_users(self, rsession: RouterSession) -> None:
        """Pull every reachable shard's user table into the mirror."""
        for shard in self.coordinator.directory.healthy_shards():
            try:
                listing = self._forward(rsession, shard, "users")
            except (ShardUnavailableError, BeliefDBError):
                continue
            for uid, name in listing:
                self._remember_user(uid, name)

    def _lookup_user(self, user: Any) -> tuple[Any, str] | None:
        if isinstance(user, str) and user in self._users_by_name:
            uid = self._users_by_name[user]
            return uid, self._users_by_uid[uid]
        if user in self._users_by_uid:
            return user, self._users_by_uid[user]
        return None

    def _resolve_user(
        self, rsession: RouterSession, user: Any, create: bool
    ) -> tuple[Any, str]:
        found = self._lookup_user(user)
        if found is None:
            self._refresh_users(rsession)
            found = self._lookup_user(user)
        if found is not None:
            return found
        if not create or not isinstance(user, str):
            raise UnknownUserError(f"unknown user reference {user!r}")
        return self._create_user(rsession, user)

    def _next_uid(self) -> int:
        numeric = [u for u in self._users_by_uid if isinstance(u, int)]
        return (max(numeric) + 1) if numeric else 1

    def _create_user(
        self, rsession: RouterSession, name: str | None, uid: Any = None
    ) -> tuple[Any, str]:
        """Create a user on EVERY shard under one router-wide lock.

        The uid is allocated by the router and *pinned* on each worker, so
        the fleet's uid space stays identical regardless of which shards
        were reachable when. Shards down right now are healed on first
        contact (see :meth:`_heal_users`)."""
        with self._user_lock:
            if name is not None:
                known = self._users_by_name.get(name)
                if known is not None:
                    if uid is not None and known != uid:
                        raise SchemaError(
                            f"user name {name!r} already registered"
                        )
                    return known, name
            if uid is None:
                uid = self._next_uid()
            display = name if name is not None else str(uid)
            broadcast_to = self.coordinator.directory.healthy_shards()
            if not broadcast_to:
                raise ShardUnavailableError(
                    "no shard is available to register the user on"
                )
            for shard in broadcast_to:
                try:
                    self._forward(
                        rsession, shard, "add_user", name=name, uid=uid
                    )
                except SchemaError:
                    # Already registered there (an earlier partial
                    # broadcast, or a heal beat us to it) — converged.
                    pass
            self._remember_user(uid, display)
            return uid, display

    # ------------------------------------------------------------ op bodies

    def _route_ping(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        return "pong"

    def _describe(self, rsession: RouterSession) -> dict[str, Any]:
        desc = rsession.base.describe()
        desc["cursors"] = len(rsession.cursors)
        if not rsession.in_txn:
            desc["transaction"] = None
        elif rsession.txn_shard is None:
            desc["transaction"] = {"statements": 0, "rows": 0}
        else:
            # The pinned worker session holds the real staged counts.
            upstream = self._forward(rsession, rsession.txn_shard, "whoami")
            desc["transaction"] = upstream["transaction"]
        return desc

    def _route_login(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        user = _require(params, "user")
        create = bool(params.get("create", False))
        uid, name = self._resolve_user(rsession, user, create)
        rsession.base.login(uid, name)
        rsession.user_raw = name
        rsession.raw_path = (name,)
        return self._describe(rsession)

    def _route_logout(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        rsession.base.logout()
        rsession.user_raw = None
        rsession.raw_path = ()
        return self._describe(rsession)

    def _route_whoami(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        return self._describe(rsession)

    def _route_set_path(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        path = _require(params, "path")
        if not isinstance(path, (list, tuple)):
            raise BeliefDBError("set_path expects a list of users")
        resolved = []
        raw = []
        for user in path:
            uid, name = self._resolve_user(rsession, user, create=False)
            resolved.append(uid)
            raw.append(name)
        rsession.base.set_path(tuple(resolved))
        rsession.raw_path = tuple(raw)
        return self._describe(rsession)

    def _route_add_user(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        uid, _ = self._create_user(
            rsession, params.get("name"), uid=params.get("uid")
        )
        return uid

    def _route_users(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        self._refresh_users(rsession)
        return [
            [uid, name]
            for uid, name in sorted(
                self._users_by_uid.items(), key=lambda kv: repr(kv[0])
            )
        ]

    # --------------------------------------------------------- routed writes

    def _statement_route(
        self, rsession: RouterSession, op: str, params: dict[str, Any]
    ) -> tuple[int, dict[str, Any]]:
        relation = _require(params, "relation")
        values = _require(params, "values")
        if not isinstance(values, (list, tuple)):
            raise BeliefDBError("values must be a list")
        raw_path = params.get("path")
        if raw_path is not None and not isinstance(raw_path, (list, tuple)):
            raise BeliefDBError("path must be a list of users (or null)")
        shard = self._shard_for_path(rsession, raw_path)
        explicit = list(self._raw_effective(rsession, raw_path))
        return shard, {
            "relation": relation,
            "values": list(values),
            "path": explicit,  # always explicit: workers hold no session
            "sign": params.get("sign", "+"),
        }

    def _route_insert(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        if rsession.in_txn:
            raise TransactionError(
                "the insert op is not transactional; use "
                "execute_prepared inside a transaction"
            )
        shard, forwarded = self._statement_route(rsession, "insert", params)
        return self._forward(rsession, shard, "insert", **forwarded)

    def _route_delete(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        if rsession.in_txn:
            raise TransactionError(
                "the delete op is not transactional; use "
                "execute_prepared inside a transaction"
            )
        shard, forwarded = self._statement_route(rsession, "delete", params)
        return self._forward(rsession, shard, "delete", **forwarded)

    def _route_believes(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        shard, forwarded = self._statement_route(rsession, "believes", params)
        return self._forward(rsession, shard, "believes", **forwarded)

    def _route_world(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        raw_path = params.get("path")
        shard = self._shard_for_path(rsession, raw_path)
        explicit = list(self._raw_effective(rsession, raw_path))
        return self._forward(rsession, shard, "world", path=explicit)

    def _route_execute(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        sql = _require(params, "sql")
        statement = parse_beliefsql(sql)
        if isinstance(statement, SelectStatement):
            merged: list = []
            targets = self._select_shards(rsession, statement, ())
            for _, rows in self._fanout(
                rsession, "execute", shards=targets, sql=sql
            ):
                merged.extend(rows)
            return merged
        if rsession.in_txn:
            raise TransactionError(
                "the legacy execute op predates transactions and cannot "
                "run DML inside one; use execute_prepared (or "
                "commit/rollback first)"
            )
        rewritten = self._rewrite(rsession, statement)
        shard = self._shard_for_statement(rsession, rewritten, ())
        return self._forward(rsession, shard, "execute", sql=str(rewritten))

    # ------------------------------------------------- prepared statements

    def _route_prepare(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        sql = _require(params, "sql")
        statement = parse_beliefsql(sql)
        # Metadata (kind, arity, columns) comes from a reference worker —
        # prepare there, read the envelope, release the handle. The router
        # keeps only text + AST; see RouterStatement.
        shards = self.coordinator.directory.healthy_shards()
        if not shards:
            raise ShardUnavailableError("no shard is available to prepare on")
        shard = shards[0]
        info = self._forward(rsession, shard, "prepare", sql=sql)
        self._forward(rsession, shard, "close_statement", stmt=info["stmt"])
        prepared = RouterStatement(
            sql=sql,
            statement=statement,
            kind=info["kind"],
            param_count=info["param_count"],
            columns=tuple(info["columns"]),
        )
        stmt_id = rsession.base.register_statement(prepared)
        return {
            "stmt": stmt_id,
            "kind": prepared.kind,
            "param_count": prepared.param_count,
            "columns": list(prepared.columns),
        }

    def _route_close_statement(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        return {
            "closed": rsession.base.close_statement(_require(params, "stmt"))
        }

    def _resolve_router_statement(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> RouterStatement:
        if "stmt" in params:
            prepared = rsession.base.statement(params["stmt"])
            if not isinstance(prepared, RouterStatement):
                raise BeliefDBError(
                    f"unknown prepared statement {params['stmt']!r}"
                )
            return prepared
        if "sql" in params:
            sql = _require(params, "sql")
            statement = parse_beliefsql(sql)
            kind = (
                "select" if isinstance(statement, SelectStatement)
                else type(statement).__name__[: -len("Statement")].lower()
            )
            return RouterStatement(
                sql=sql, statement=statement, kind=kind,
                param_count=0, columns=(),
            )
        raise BeliefDBError("execute_prepared needs 'stmt' or 'sql'")

    @staticmethod
    def _bind_params(params: dict[str, Any]) -> tuple[Any, ...]:
        bind = params.get("params", [])
        if not isinstance(bind, (list, tuple)):
            raise BeliefDBError("params must be a list")
        return tuple(bind)

    def _route_execute_prepared(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        prepared = self._resolve_router_statement(rsession, params)
        bind = self._bind_params(params)
        max_rows = _page_size(params, "max_rows")
        if isinstance(prepared.statement, SelectStatement):
            return self._fanout_select(
                rsession, prepared.statement, prepared.sql, bind, max_rows
            )
        rewritten = self._rewrite(rsession, prepared.statement)
        shard = self._shard_for_statement(rsession, rewritten, bind)
        if rsession.in_txn:
            self._pin_txn(rsession, shard)
            return self._forward(
                rsession, shard, "execute_prepared",
                sql=str(rewritten), params=list(bind),
            )
        return self._forward(
            rsession, shard, "execute_prepared",
            sql=str(rewritten), params=list(bind), max_rows=max_rows,
        )

    #: First worker page of a fan-out select: small on purpose, to sample
    #: row width before the byte-adaptive drain picks real page sizes.
    FANOUT_PROBE_ROWS = 8

    def _drain_budgeted(
        self, client: BeliefClient, payload: dict[str, Any]
    ) -> list:
        """Drain a worker's paged select without ever asking for a page
        that could overflow the frame ceiling: page sizes adapt to the
        measured row width, targeting ceiling/3 bytes per page (the same
        safety factor the batching client uses)."""
        rows = list(payload["rows"])
        cursor_id = payload.get("cursor")
        has_more = bool(payload.get("has_more"))
        budget = max(1024, self.max_frame_bytes // 3)
        while has_more and cursor_id is not None:
            recent = rows[-32:]
            if recent:
                avg = max(
                    1,
                    sum(_estimated_row_bytes(r) for r in recent)
                    // len(recent),
                )
                n = min(512, max(1, budget // avg))
            else:
                n = self.FANOUT_PROBE_ROWS
            page = client.fetch(cursor_id, n)
            rows.extend(page["rows"])
            has_more = bool(page["has_more"])
        return rows

    def _fanout_select(
        self,
        rsession: RouterSession,
        statement: SelectStatement,
        sql: str,
        bind: tuple[Any, ...],
        max_rows: int,
    ) -> dict[str, Any]:
        """Route a select to the shards its worlds live on — one shard in
        the common case — gather+drain each one's pages, and re-page the
        merged rows through a router-held cursor."""
        rows: list = []
        columns: list[str] | None = None
        elapsed_ms = 0.0
        shards = self._select_shards(rsession, statement, bind)
        for shard in shards:
            def gather(client: BeliefClient) -> tuple[dict[str, Any], list]:
                payload = client.execute_prepared(
                    sql, list(bind), max_rows=self.FANOUT_PROBE_ROWS
                )
                return payload, self._drain_budgeted(client, payload)

            payload, shard_rows = self._forward_fn(
                rsession, shard, "execute_prepared", gather
            )
            if columns is None:
                columns = list(payload["columns"])
            elapsed_ms += payload["elapsed_ms"]
            rows.extend(shard_rows)
        self._fanout_hist.observe(float(len(shards)))
        first, end = _page_slice(rows, 0, max_rows, self.max_frame_bytes // 3)
        cursor_id = (
            rsession.register_cursor(rows, end) if end < len(rows) else None
        )
        return {
            "kind": "select",
            "columns": columns or [],
            "rowcount": len(rows),
            "status": f"SELECT {len(rows)}",
            "elapsed_ms": round(elapsed_ms, 3),
            "rows": first,
            "cursor": cursor_id,
            "has_more": cursor_id is not None,
        }

    def _route_execute_batch(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        prepared = self._resolve_router_statement(rsession, params)
        if isinstance(prepared.statement, SelectStatement):
            raise BeliefDBError("execute_batch is for DML, not select")
        rows = _require(params, "param_rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, (list, tuple)) for row in rows
        ):
            raise BeliefDBError("param_rows must be a list of lists")
        rewritten = self._rewrite(rsession, prepared.statement)
        groups: dict[int, list[list[Any]]] = {}
        for row in rows:
            shard = self._shard_for_statement(rsession, rewritten, tuple(row))
            groups.setdefault(shard, []).append(list(row))
        if not groups:
            # An empty batch still validates the statement server-side.
            groups = {self._shard_for_path(rsession, None): []}
        sql = str(rewritten)
        if rsession.in_txn:
            if len(groups) > 1:
                raise CrossShardTransactionError(
                    f"batch rows route to shards {sorted(groups)} but a "
                    "transaction is single-shard; split the batch or run "
                    "it outside the transaction — nothing was staged"
                )
            (shard, shard_rows), = groups.items()
            self._pin_txn(rsession, shard)
            return self._forward(
                rsession, shard, "execute_batch",
                sql=sql, param_rows=shard_rows,
            )
        payload: dict[str, Any] | None = None
        for shard in sorted(groups):
            payload = merge_batch_payload(payload, self._forward(
                rsession, shard, "execute_batch",
                sql=sql, param_rows=groups[shard],
            ))
        assert payload is not None
        return payload

    # --------------------------------------------------------- transactions

    def _pin_txn(self, rsession: RouterSession, shard: int) -> None:
        """First staged DML pins the transaction to its shard; a statement
        routing elsewhere is rejected typed and NOT staged — the open
        transaction survives untouched."""
        if rsession.txn_shard is None:
            self._forward(rsession, shard, "begin")
            rsession.txn_shard = shard
        elif rsession.txn_shard != shard:
            raise CrossShardTransactionError(
                f"this transaction is pinned to shard {rsession.txn_shard} "
                f"(where its first statement staged), but this statement "
                f"routes to shard {shard}; commit or rollback first — the "
                "statement was not staged"
            )

    def _route_begin(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        if rsession.in_txn:
            raise TransactionError(
                "a transaction is already open on this session"
            )
        rsession.in_txn = True
        rsession.txn_shard = None
        return self._describe(rsession)

    def _route_commit(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        if not rsession.in_txn:
            raise TransactionError(
                "no transaction is open — nothing to commit"
            )
        shard = rsession.txn_shard
        rsession.reset_txn()  # consumed whatever the outcome, like take_transaction
        if shard is None:
            # Empty transaction: run begin+commit on the session's home
            # shard so the reply is the worker's exact commit envelope.
            home = self._shard_for_path(rsession, None)
            self._forward(rsession, home, "begin")
            return self._forward(rsession, home, "commit")
        return self._forward(rsession, shard, "commit")

    def _route_rollback(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        if not rsession.in_txn:
            raise TransactionError(
                "no transaction is open — nothing to roll back"
            )
        shard = rsession.txn_shard
        rsession.reset_txn()
        if shard is None:
            return {"discarded": 0}
        return self._forward(rsession, shard, "rollback")

    # -------------------------------------------------------------- paging

    def _route_fetch(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        count = _page_size(params, "n")
        rows, has_more = rsession.fetch_rows(
            _require(params, "cursor"), count, self.max_frame_bytes // 3
        )
        return {"rows": rows, "has_more": has_more}

    def _route_close_cursor(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        return {"closed": rsession.close_cursor(_require(params, "cursor"))}

    # ------------------------------------------------------- fan-out reads

    def _route_query(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        bcq = _require(params, "bcq")
        merged: list = []
        for _, rows in self._fanout(rsession, "query", bcq=bcq):
            merged.extend(rows)
        return merged

    def _route_worlds(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        # Each *user* world lives on exactly one shard, but every shard
        # carries its own (mostly empty) ε content world — merge by path,
        # summing statement counts (exact: non-owners contribute zeros).
        by_path: dict[tuple, dict[str, Any]] = {}
        for _, worlds in self._fanout(rsession, "worlds"):
            for world in worlds:
                key = tuple(world["path"])
                entry = by_path.get(key)
                if entry is None:
                    by_path[key] = dict(world)
                else:
                    entry["positives"] += world["positives"]
                    entry["negatives"] += world["negatives"]
        return [
            by_path[key]
            for key in sorted(by_path, key=lambda p: (len(p), repr(p)))
        ]

    def _route_kripke(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        parts = [
            f"=== shard {shard} ===\n{text}"
            for shard, text in self._fanout(rsession, "kripke")
        ]
        return "\n\n".join(parts)

    def _route_describe(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        parts = [
            f"=== shard {shard} ===\n{text}"
            for shard, text in self._fanout(rsession, "describe")
        ]
        return "\n\n".join(parts)

    # --------------------------------------------------------- observability

    def _router_server_stats(self) -> dict[str, Any]:
        with self._state_lock:
            server = dict(self.stats)
        server["inflight_requests"] = self._inflight_now()
        server["sessions_active"] = server["connections_active"]
        server["uptime_seconds"] = round(self._uptime(), 3)
        server["max_sessions"] = self.max_sessions
        server["max_inflight_requests"] = self.max_inflight_requests
        server["slow_ops_recorded"] = self.slow_ops.recorded_total
        return server

    def _route_stats(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        """The fleet-wide stats aggregate: counters summed across shards,
        gauges maxed, plus per-shard sections and the router's own."""
        merged: dict[str, Any] = {}
        per_shard: dict[str, Any] = {}
        reached = 0
        for shard in range(self.ring.n_shards):
            try:
                payload = self._forward(rsession, shard, "stats")
            except ShardUnavailableError:
                per_shard[str(shard)] = {"unavailable": True}
                continue
            reached += 1
            per_shard[str(shard)] = payload.get("server", {})
            _merge_stats_tree(merged, payload)
        # Every shard carries its own ε content world; the fleet has one.
        worlds = merged.get("worlds")
        if isinstance(worlds, int) and reached > 1:
            merged["worlds"] = worlds - (reached - 1)
        annotations = merged.get("annotations", 0)
        if isinstance(annotations, int) and annotations > 0:
            merged["relative_overhead"] = round(
                merged.get("total_rows", 0) / annotations, 4
            )
        cache = merged.get("statement_cache")
        if isinstance(cache, dict):
            lookups = cache.get("hits", 0) + cache.get("misses", 0)
            cache["hit_rate"] = (
                cache.get("hits", 0) / lookups if lookups else 0.0
            )
        merged["shards"] = per_shard
        merged["shards_reached"] = reached
        merged["router"] = self._router_server_stats()
        return merged

    def _route_metrics(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        """Every shard's metric families plus the router's own, each sample
        tagged with a ``shard`` label (``"router"`` for local families)."""
        families: dict[str, dict[str, Any]] = {}

        def fold(snapshot: list[dict[str, Any]], shard_label: str) -> None:
            for family in snapshot:
                entry = families.get(family["name"])
                if entry is None:
                    names = list(family["label_names"])
                    if "shard" not in names:
                        names.append("shard")
                    entry = {
                        "name": family["name"],
                        "type": family["type"],
                        "help": family["help"],
                        "label_names": names,
                        "samples": [],
                    }
                    families[family["name"]] = entry
                for sample in family["samples"]:
                    tagged = dict(sample)
                    # Families already shard-labelled (the coordinator's
                    # health gauges, router forward latency) keep theirs.
                    if "shard" not in sample["labels"]:
                        tagged["labels"] = {
                            **sample["labels"], "shard": shard_label,
                        }
                    entry["samples"].append(tagged)

        fold(self.metrics.snapshot(), "router")
        for shard in self.coordinator.directory.healthy_shards():
            try:
                payload = self._forward(rsession, shard, "metrics")
            except (ShardUnavailableError, BeliefDBError):
                continue
            fold(payload.get("families", []), str(shard))
        return {
            "families": list(families.values()),
            "slow_ops": self.slow_ops.snapshot(),
        }

    # --------------------------------------------------- lifecycle & audit

    def _route_lifecycle(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        """Curation writes route like DML: by the belief-world head.

        ``propose`` carries its statement's path; ``transition`` routes by
        an explicit ``path`` param or the session default (belief ids are
        content hashes — the router cannot invert them, so a transition
        addressed from outside the owning session must say which world the
        belief lives in). ``decay_sweep`` fans out: every shard sweeps its
        own records, each stamping its own WAL.
        """
        if rsession.in_txn:
            raise TransactionError(
                "lifecycle operations are not transactional; "
                "commit or rollback first"
            )
        action = _require(params, "action")
        # Workers hold no session for router upstreams, so attribution is
        # forwarded explicitly: an explicit actor wins, else the curator
        # logged into *this* router session.
        actor = params.get("actor")
        if actor is None and rsession.base.user is not None:
            actor = rsession.base.user
        if action == "decay_sweep":
            swept = 0
            changed = 0
            for _, result in self._fanout(
                rsession, "lifecycle", action="decay_sweep", actor=actor
            ):
                swept += result["swept"]
                changed += result["changed"]
            return {"swept": swept, "changed": changed}
        raw_path = params.get("path")
        if raw_path is not None and not isinstance(raw_path, (list, tuple)):
            raise BeliefDBError("path must be a list of users (or null)")
        shard = self._shard_for_path(rsession, raw_path)
        forwarded = dict(params)
        forwarded["actor"] = actor
        if action == "propose":
            # Workers hold no session state: the path is always explicit.
            forwarded["path"] = list(self._raw_effective(rsession, raw_path))
        else:
            forwarded.pop("path", None)  # routing-only for transitions
        return self._forward(rsession, shard, "lifecycle", **forwarded)

    def _route_audit(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        """Lifecycle reads. A ``queue`` listing with a path goes to the
        owning shard; the rest scatter — the log merges by timestamp, and
        record/provenance lookups return the one shard's answer that has
        the belief (each id lives on exactly one shard)."""
        kind = params.get("kind", "log")
        if kind == "queue":
            raw_path = params.get("path")
            if raw_path is not None and not isinstance(raw_path, (list, tuple)):
                raise BeliefDBError("path must be a list of users (or null)")
            if raw_path is not None:
                shard = self._shard_for_path(rsession, raw_path)
                forwarded = dict(params)
                forwarded["path"] = list(
                    self._raw_effective(rsession, raw_path)
                )
                return self._forward(rsession, shard, "audit", **forwarded)
            merged: list = []
            for _, views in self._fanout(rsession, "audit", **params):
                merged.extend(views)
            merged.sort(key=lambda v: (v["created_ts"], v["belief"]))
            limit = params.get("limit")
            return merged[:limit] if limit else merged
        if kind == "log":
            events: list = []
            for _, shard_events in self._fanout(rsession, "audit", **params):
                events.extend(shard_events)
            events.sort(key=lambda e: (e["ts"], e["seq"]))
            limit = params.get("limit")
            return events[-limit:] if limit else events
        if kind in ("record", "provenance"):
            last_error: LifecycleError | None = None
            for shard in range(self.ring.n_shards):
                try:
                    result = self._forward(rsession, shard, "audit", **params)
                except LifecycleError as exc:
                    last_error = exc  # not on this shard; keep looking
                    continue
                if result is not None:
                    return result
            if last_error is not None:
                raise last_error
            return None
        raise BeliefDBError(
            f"unknown audit kind {kind!r}; expected log, record, "
            "queue, or provenance"
        )

    def _route_shard_status(
        self, rsession: RouterSession, params: dict[str, Any]
    ) -> Any:
        status = self.coordinator.status()
        status["ring"] = {
            "n_shards": self.ring.n_shards,
            "vnodes": self.ring.vnodes,
        }
        with self._state_lock:
            sessions = self.stats["connections_active"]
            ops = self.stats["ops_served"]
        status["router"] = {
            "address": list(self.address) if self.address else None,
            "sessions_active": sessions,
            "ops_served": ops,
        }
        return status


#: Keys merged with max() instead of sum() across shard stats payloads
#: (point-in-time gauges, latency quantiles, and fleet-replicated counts
#: like the user table, where summing lies).
_STATS_MAX_KEYS = frozenset({
    "uptime_seconds", "p50_ms", "p99_ms", "capacity", "size", "users",
})

#: Keys where the first shard's value stands for the fleet (config echoes).
_STATS_FIRST_KEYS = frozenset({
    "backend", "eager", "strict", "max_sessions", "max_inflight_requests",
})


def _merge_stats_tree(into: dict[str, Any], payload: dict[str, Any]) -> None:
    """Fold one shard's stats payload into the running aggregate: dicts
    recurse, numbers sum (or max for gauge-like keys), everything else
    keeps the first shard's value."""
    for key, value in payload.items():
        if key not in into:
            into[key] = dict(value) if isinstance(value, dict) else value
            if isinstance(value, dict):
                merged_child: dict[str, Any] = {}
                _merge_stats_tree(merged_child, value)
                into[key] = merged_child
            continue
        current = into[key]
        if isinstance(value, dict) and isinstance(current, dict):
            _merge_stats_tree(current, value)
        elif key in _STATS_FIRST_KEYS:
            continue
        elif (
            isinstance(value, (int, float)) and not isinstance(value, bool)
            and isinstance(current, (int, float))
            and not isinstance(current, bool)
        ):
            if key in _STATS_MAX_KEYS:
                into[key] = max(current, value)
            else:
                into[key] = current + value
        # else: keep the first value (strings, bools, lists)


#: op name -> router handler (unbound; called as handler(router, rsession,
#: params)). Covers every wire op, including the router-only shard_status.
_ROUTER_HANDLERS = {
    "ping": BeliefRouter._route_ping,
    "login": BeliefRouter._route_login,
    "logout": BeliefRouter._route_logout,
    "whoami": BeliefRouter._route_whoami,
    "set_path": BeliefRouter._route_set_path,
    "add_user": BeliefRouter._route_add_user,
    "users": BeliefRouter._route_users,
    "insert": BeliefRouter._route_insert,
    "delete": BeliefRouter._route_delete,
    "execute": BeliefRouter._route_execute,
    "prepare": BeliefRouter._route_prepare,
    "close_statement": BeliefRouter._route_close_statement,
    "execute_prepared": BeliefRouter._route_execute_prepared,
    "execute_batch": BeliefRouter._route_execute_batch,
    "begin": BeliefRouter._route_begin,
    "commit": BeliefRouter._route_commit,
    "rollback": BeliefRouter._route_rollback,
    "fetch": BeliefRouter._route_fetch,
    "close_cursor": BeliefRouter._route_close_cursor,
    "query": BeliefRouter._route_query,
    "believes": BeliefRouter._route_believes,
    "world": BeliefRouter._route_world,
    "worlds": BeliefRouter._route_worlds,
    "stats": BeliefRouter._route_stats,
    "metrics": BeliefRouter._route_metrics,
    "kripke": BeliefRouter._route_kripke,
    "describe": BeliefRouter._route_describe,
    "shard_status": BeliefRouter._route_shard_status,
    "lifecycle": BeliefRouter._route_lifecycle,
    "audit": BeliefRouter._route_audit,
}

"""Sharded belief store: hash-ring partitioning, worker fleet, router.

Scale-out composition of the existing single-node server: N complete
belief servers (the *workers*, each with its own storage engine and WAL)
partitioned by belief-world head, supervised by a :class:`Coordinator`,
and fronted by a :class:`BeliefRouter` that speaks the unchanged wire
protocol. :class:`ShardCluster` assembles the whole thing in one call —
``repro serve --shards N`` is a thin wrapper around it.
"""

from repro.shard.cluster import ShardCluster
from repro.shard.coordinator import (
    Coordinator,
    ProcessWorker,
    ShardDirectory,
    ThreadWorker,
    WorkerSpec,
)
from repro.shard.partitioning import (
    CONTENT_KEY,
    HashRing,
    canonical_key,
    path_head,
    statement_head,
)
from repro.shard.router import BeliefRouter, RouterSession

__all__ = [
    "BeliefRouter",
    "CONTENT_KEY",
    "Coordinator",
    "HashRing",
    "ProcessWorker",
    "RouterSession",
    "ShardCluster",
    "ShardDirectory",
    "ThreadWorker",
    "WorkerSpec",
    "canonical_key",
    "path_head",
    "statement_head",
]

"""One-call assembly of a sharded belief store: fleet + router.

:class:`ShardCluster` wires a :class:`~repro.shard.coordinator.Coordinator`
(the worker fleet and its supervisor) to a
:class:`~repro.shard.router.BeliefRouter` (the single wire endpoint),
sharing one metrics registry so ``metrics``/Prometheus exposition covers
router ops, per-shard health gauges, and restart counters in one scrape.

    with ShardCluster(n_shards=4) as cluster:
        host, port = cluster.address
        ...  # any existing client works against (host, port)
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import DEFAULT_CAPACITY, DEFAULT_THRESHOLD_MS
from repro.shard.coordinator import Coordinator, WorkerSpec
from repro.shard.router import BeliefRouter


class ShardCluster:
    """A coordinator-supervised worker fleet behind one router endpoint."""

    def __init__(
        self,
        n_shards: int,
        spec: WorkerSpec | None = None,
        worker_kind: str = "thread",
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: Any = None,
        max_sessions: int | None = None,
        max_inflight_requests: int | None = None,
        slow_op_ms: float | None = DEFAULT_THRESHOLD_MS,
        slow_op_capacity: int = DEFAULT_CAPACITY,
        max_frame_bytes: int | None = None,
        ping_interval: float = 0.25,
        ping_timeout: float = 2.0,
        wire: str = "auto",
    ) -> None:
        # The wire preference flows both directions: to the workers (via
        # the spec, so restarts keep it) and to the router's client-facing
        # listener plus its upstream connections.
        if spec is None:
            spec = WorkerSpec(wire=wire)
        elif spec.wire != wire and wire != "auto":
            spec = dataclasses.replace(spec, wire=wire)
        # One registry for the whole cluster: the coordinator's shard_up /
        # shard_load / restart metrics register alongside the router's own
        # families, so one metrics op (or Prometheus scrape) sees the fleet.
        registry = MetricsRegistry()
        self.coordinator = Coordinator(
            n_shards,
            spec=spec,
            worker_kind=worker_kind,
            data_dir=data_dir,
            ping_interval=ping_interval,
            ping_timeout=ping_timeout,
            registry=registry,
        )
        self.router = BeliefRouter(
            self.coordinator,
            host=host,
            port=port,
            max_sessions=max_sessions,
            max_inflight_requests=max_inflight_requests,
            slow_op_ms=slow_op_ms,
            slow_op_capacity=slow_op_capacity,
            max_frame_bytes=max_frame_bytes,
            registry=registry,
            wire=wire,
            upstream_wire=wire,
        )

    @property
    def address(self) -> tuple[str, int] | None:
        return self.router.address

    @property
    def n_shards(self) -> int:
        return self.coordinator.n_shards

    def start(self) -> "ShardCluster":
        self.coordinator.start()
        self.coordinator.wait_healthy()
        self.router.start()
        return self

    def stop(self) -> None:
        try:
            self.router.stop()
        finally:
            self.coordinator.stop()

    def __enter__(self) -> "ShardCluster":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

"""Worker-fleet supervision: spawn, health-check, and restart belief shards.

A shard worker is a complete, unmodified belief server — the threaded or
asyncio core over its own :class:`~repro.bdms.bdms.BeliefDBMS`, optionally
with its own WAL/durability stack on a private data directory. The
coordinator owns the fleet:

* it spawns one worker per shard (in-process :class:`ThreadWorker` for
  tests and single-machine serving, or :class:`ProcessWorker` — a real
  ``python -m repro serve`` subprocess — for crash isolation);
* it registers each worker's address in a :class:`ShardDirectory` that the
  router consults per request;
* a health thread pings every worker; a worker that dies (process exit,
  SIGKILL) or fails consecutive pings is restarted **on the same data
  directory**, so WAL recovery replays every acknowledged write;
* while a shard is down, the directory answers :class:`ShardUnavailableError`
  for it — the router turns that into a typed error instead of hanging.

Restarts bump the directory *epoch* for the shard, which is how the router
knows to throw away cached connections to the old incarnation.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, IO

from repro.errors import BeliefDBError, ShardUnavailableError
from repro.obs.clock import monotonic_s
from repro.obs.metrics import MetricsRegistry
from repro.server.client import BeliefClient

#: Matches the address line both server cores print on startup.
_ADDRESS_RE = re.compile(r"listening on ([\d.]+):(\d+)")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to (re)build one shard worker from scratch.

    Mirrors the ``repro serve`` flag surface — a :class:`ProcessWorker`
    literally turns this into a command line, and a :class:`ThreadWorker`
    performs the same construction in-process. Frozen so a restart always
    rebuilds an identical worker.
    """

    schema: str = "sightings"
    backend: str = "engine"
    use_async: bool = False
    data_dir: str | None = None
    wal_sync: str = "always"
    checkpoint_interval: float | None = None
    max_inflight: int = 32
    max_sessions: int | None = None
    max_inflight_requests: int | None = None
    slow_op_ms: float | None = None
    max_frame_bytes: int | None = None
    wire: str = "auto"


class ThreadWorker:
    """One shard served in-process: a server core on a private BDMS.

    The cheap fleet unit — no fork/exec, startup in milliseconds — used by
    the default ``repro serve --shards N`` deployment and by most tests.
    ``kill()`` abandons the database *without* a shutdown checkpoint, which
    is as close to SIGKILL as an in-process worker can get: recovery then
    genuinely replays the WAL.
    """

    kind = "thread"

    def __init__(self, shard_id: int, spec: WorkerSpec) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self._server: Any = None
        self._db: Any = None

    @property
    def pid(self) -> int | None:
        return None  # in-process: no pid of its own

    def start(self) -> tuple[str, int]:
        from repro.bdms.bdms import BeliefDBMS
        from repro.core.schema import experiment_schema, sightings_schema

        spec = self.spec
        schema = (
            experiment_schema() if spec.schema == "experiment"
            else sightings_schema()
        )
        durability = None
        if spec.data_dir is not None:
            from repro.durability import DurabilityManager

            durability = DurabilityManager(spec.data_dir, sync=spec.wal_sync)
        self._db = BeliefDBMS(
            schema, backend=spec.backend, strict=False, durability=durability
        )
        admission = {
            "max_sessions": spec.max_sessions,
            "max_inflight_requests": spec.max_inflight_requests,
            "max_frame_bytes": spec.max_frame_bytes,
            "wire": spec.wire,
        }
        checkpoint = (
            spec.checkpoint_interval if durability is not None else None
        )
        if spec.slow_op_ms is not None:
            admission["slow_op_ms"] = spec.slow_op_ms
        if spec.use_async:
            from repro.server.async_server import AsyncBeliefServer

            self._server = AsyncBeliefServer(
                self._db, port=0, checkpoint_interval=checkpoint,
                max_inflight=spec.max_inflight, **admission,
            )
        else:
            from repro.server.server import BeliefServer

            self._server = BeliefServer(
                self._db, port=0, checkpoint_interval=checkpoint, **admission,
            )
        self._server.start()
        assert self._server.address is not None
        return self._server.address

    def alive(self) -> bool:
        return self._server is not None and self._server.running

    def stop(self) -> None:
        """Graceful shutdown: stop serving, checkpoint, close the store."""
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._db is not None:
            if self._db.durability is not None:
                try:
                    self._db.checkpoint()
                except BeliefDBError:
                    pass  # recovery will replay the WAL instead
            self._db.close()
            self._db = None

    def kill(self) -> None:
        """Crash simulation: drop the server without checkpoint/close."""
        if self._server is not None:
            self._server.stop()
            self._server = None
        db, self._db = self._db, None  # abandoned; WAL holds the truth
        if db is not None and db.durability is not None:
            try:
                # Crash-equivalent by design (no checkpoint) — but the
                # next in-process incarnation needs the directory lock.
                db.durability.close()
            except Exception:  # noqa: BLE001 — already "dead"
                pass


class ProcessWorker:
    """One shard as a real ``python -m repro serve`` subprocess.

    Full crash isolation: the failover test SIGKILLs this and watches the
    coordinator resurrect it with zero acknowledged writes lost. Startup
    parses the server's ``listening on host:port`` line, then a daemon
    thread keeps draining stdout so the child never blocks on a full pipe.
    """

    kind = "process"
    start_timeout = 30.0

    def __init__(self, shard_id: int, spec: WorkerSpec) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self._proc: subprocess.Popen[str] | None = None

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    def _command(self) -> list[str]:
        spec = self.spec
        cmd = [
            sys.executable, "-u", "-m", "repro", "serve",
            "--port", "0",
            "--schema", spec.schema,
            "--backend", spec.backend,
        ]
        if spec.data_dir is not None:
            cmd += [
                "--data-dir", spec.data_dir,
                "--wal-sync", spec.wal_sync,
            ]
            if spec.checkpoint_interval is not None:
                cmd += ["--checkpoint-interval", str(spec.checkpoint_interval)]
        if spec.use_async:
            cmd += ["--async", "--max-inflight", str(spec.max_inflight)]
        if spec.max_sessions is not None:
            cmd += ["--max-sessions", str(spec.max_sessions)]
        if spec.max_inflight_requests is not None:
            cmd += ["--max-inflight-requests", str(spec.max_inflight_requests)]
        if spec.slow_op_ms is not None:
            cmd += ["--slow-op-ms", str(spec.slow_op_ms)]
        if spec.max_frame_bytes is not None:
            cmd += ["--max-frame-bytes", str(spec.max_frame_bytes)]
        if spec.wire != "auto":
            cmd += ["--wire", spec.wire]
        return cmd

    @staticmethod
    def _child_env() -> dict[str, str]:
        """The child must import :mod:`repro` the same way we did — in a
        source checkout that means putting our package root on PYTHONPATH
        (an installed package inherits it for free)."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        return env

    def start(self) -> tuple[str, int]:
        proc = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=self._child_env(),
        )
        self._proc = proc
        assert proc.stdout is not None
        deadline = monotonic_s() + self.start_timeout
        address: tuple[str, int] | None = None
        while monotonic_s() < deadline:
            line = proc.stdout.readline()
            if not line:
                break  # child exited before announcing an address
            match = _ADDRESS_RE.search(line)
            if match:
                address = (match.group(1), int(match.group(2)))
                break
        if address is None:
            self.kill()
            raise BeliefDBError(
                f"shard {self.shard_id} worker failed to start "
                f"(no address line within {self.start_timeout:.0f}s)"
            )
        threading.Thread(
            target=self._drain, args=(proc.stdout,),
            name=f"shard-{self.shard_id}-stdout", daemon=True,
        ).start()
        return address

    @staticmethod
    def _drain(stream: IO[str]) -> None:
        for _ in stream:
            pass

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def stop(self) -> None:
        if self._proc is None:
            return
        self._proc.terminate()
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self._proc.kill()
            self._proc.wait(timeout=10)
        self._proc = None

    def kill(self) -> None:
        """SIGKILL — the real thing; no checkpoint, no WAL flush beyond
        what each acknowledged write already fsynced."""
        if self._proc is None:
            return
        self._proc.kill()
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            pass
        self._proc = None


class ShardDirectory:
    """Thread-safe shard → (address, health, epoch) registry.

    The router does one :meth:`lookup` per routed request; the coordinator
    is the only writer. The *epoch* increments on every (re)registration,
    so a router holding a client built at epoch 2 notices the shard now at
    epoch 3 and reconnects instead of writing into a dead socket.
    """

    def __init__(self, n_shards: int) -> None:
        self.n_shards = n_shards
        self._lock = threading.Lock()
        self._addresses: dict[int, tuple[str, int]] = {}
        self._healthy: dict[int, bool] = {i: False for i in range(n_shards)}
        self._epochs: dict[int, int] = {i: 0 for i in range(n_shards)}

    def register(self, shard: int, address: tuple[str, int]) -> None:
        with self._lock:
            self._addresses[shard] = address
            self._healthy[shard] = True
            self._epochs[shard] += 1

    def mark_unhealthy(self, shard: int) -> None:
        with self._lock:
            self._healthy[shard] = False

    def lookup(self, shard: int) -> tuple[tuple[str, int], int]:
        """The live address and epoch — or a typed refusal, never a hang."""
        with self._lock:
            if not self._healthy.get(shard, False):
                raise ShardUnavailableError(
                    f"shard {shard} is unavailable (worker down or "
                    "restarting); the request was not executed and is safe "
                    "to retry"
                )
            return self._addresses[shard], self._epochs[shard]

    def epoch(self, shard: int) -> int:
        with self._lock:
            return self._epochs[shard]

    def healthy(self, shard: int) -> bool:
        with self._lock:
            return self._healthy.get(shard, False)

    def healthy_shards(self) -> list[int]:
        with self._lock:
            return [i for i in range(self.n_shards) if self._healthy[i]]

    def snapshot(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                {
                    "shard": i,
                    "address": list(self._addresses.get(i, ())) or None,
                    "healthy": self._healthy[i],
                    "epoch": self._epochs[i],
                }
                for i in range(self.n_shards)
            ]


class Coordinator:
    """Spawns the worker fleet and keeps it alive.

    Health protocol: every ``ping_interval`` seconds each worker is checked
    — first that it is still *there* (thread running / process not exited),
    then that it answers a wire ``ping`` (the admission-exempt op, so a
    saturated worker still passes). A dead worker restarts immediately;
    ``ping_failures`` consecutive unanswered pings also trigger a restart.
    Restarting reuses the worker's own data directory, so the new
    incarnation recovers from snapshot + WAL before serving.
    """

    def __init__(
        self,
        n_shards: int,
        spec: WorkerSpec | None = None,
        worker_kind: str = "thread",
        data_dir: str | None = None,
        ping_interval: float = 0.25,
        ping_timeout: float = 2.0,
        ping_failures: int = 2,
        load_interval: float = 2.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if n_shards < 1:
            raise BeliefDBError("a shard fleet needs at least one worker")
        if worker_kind not in ("thread", "process"):
            raise BeliefDBError(f"unknown worker kind {worker_kind!r}")
        base = spec if spec is not None else WorkerSpec()
        self.n_shards = n_shards
        self.worker_kind = worker_kind
        self.ping_interval = ping_interval
        self.ping_timeout = ping_timeout
        self.ping_failures = ping_failures
        self.load_interval = load_interval
        self.directory = ShardDirectory(n_shards)
        self.workers: list[ThreadWorker | ProcessWorker] = []
        worker_cls = ThreadWorker if worker_kind == "thread" else ProcessWorker
        for shard in range(n_shards):
            shard_spec = base
            if data_dir is not None:
                shard_spec = replace(
                    base,
                    data_dir=str(Path(data_dir) / f"shard-{shard:02d}"),
                )
            self.workers.append(worker_cls(shard, shard_spec))
        self._restarts = {i: 0 for i in range(n_shards)}
        self._ping_misses = {i: 0 for i in range(n_shards)}
        self._load: dict[int, float] = {i: 0.0 for i in range(n_shards)}
        self._clients: dict[int, BeliefClient] = {}
        self._stopping = threading.Event()
        self._health_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.metrics = registry if registry is not None else MetricsRegistry()
        up = self.metrics.gauge(
            "beliefdb_shard_up",
            "1 when the shard's worker is registered and answering pings.",
            labels=("shard",),
        )
        load = self.metrics.gauge(
            "beliefdb_shard_load",
            "Wire ops served by the shard so far (scraped from the worker).",
            labels=("shard",),
        )
        self._restart_counter = self.metrics.counter(
            "beliefdb_shard_restarts_total",
            "Times the coordinator restarted a crashed/unresponsive worker.",
            labels=("shard",),
        )
        for shard in range(n_shards):
            up.labels(shard=str(shard)).set_function(
                lambda s=shard: 1.0 if self.directory.healthy(s) else 0.0
            )
            load.labels(shard=str(shard)).set_function(
                lambda s=shard: self._load[s]
            )

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "Coordinator":
        for worker in self.workers:
            address = worker.start()
            self.directory.register(worker.shard_id, address)
        self._stopping.clear()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="shard-coordinator-health",
            daemon=True,
        )
        self._health_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10)
            self._health_thread = None
        with self._lock:
            clients, self._clients = self._clients, {}
        for client in clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 — shutdown best-effort
                pass
        for worker in self.workers:
            try:
                worker.stop()
            except Exception:  # noqa: BLE001 — keep stopping the rest
                pass

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ----------------------------------------------------------------- health

    def _client(self, shard: int) -> BeliefClient:
        """The cached health-check client for one shard (rebuilt per epoch)."""
        with self._lock:
            client = self._clients.get(shard)
        if client is not None:
            return client
        address, _ = self.directory.lookup(shard)
        client = BeliefClient(
            *address, connect_retries=3, retry_delay=0.05,
            timeout=self.ping_timeout, auto_reconnect=False,
        )
        with self._lock:
            self._clients[shard] = client
        return client

    def _drop_client(self, shard: int) -> None:
        with self._lock:
            client = self._clients.pop(shard, None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass

    def _health_loop(self) -> None:
        last_load_scrape = 0.0
        while not self._stopping.wait(self.ping_interval):
            scrape_load = (
                monotonic_s() - last_load_scrape >= self.load_interval
            )
            if scrape_load:
                last_load_scrape = monotonic_s()
            for worker in self.workers:
                if self._stopping.is_set():
                    return
                shard = worker.shard_id
                if not worker.alive():
                    self._restart(worker)
                    continue
                try:
                    client = self._client(shard)
                    client.ping()
                    if scrape_load:
                        self._load[shard] = self._sum_ops(client.metrics())
                except ShardUnavailableError:
                    # Lost a race with our own restart bookkeeping; the
                    # next tick sees the re-registered address.
                    continue
                except Exception:  # noqa: BLE001 — any failure is a miss
                    self._drop_client(shard)
                    self._ping_misses[shard] += 1
                    if self._ping_misses[shard] >= self.ping_failures:
                        self._restart(worker)
                else:
                    self._ping_misses[shard] = 0

    @staticmethod
    def _sum_ops(metrics_payload: dict[str, Any]) -> float:
        for family in metrics_payload.get("families", ()):
            if family.get("name") == "beliefdb_ops_total":
                return float(sum(
                    sample.get("value", 0.0)
                    for sample in family.get("samples", ())
                ))
        return 0.0

    def _restart(self, worker: "ThreadWorker | ProcessWorker") -> None:
        """Bring a dead/unresponsive worker back on its own data dir."""
        shard = worker.shard_id
        self.directory.mark_unhealthy(shard)
        self._drop_client(shard)
        try:
            worker.kill()  # ensure the old incarnation is fully gone
        except Exception:  # noqa: BLE001
            pass
        try:
            address = worker.start()
        except Exception:  # noqa: BLE001 — stays unhealthy; retried next tick
            return
        self._ping_misses[shard] = 0
        self._restarts[shard] += 1
        self._restart_counter.labels(shard=str(shard)).inc()
        self.directory.register(shard, address)

    # ----------------------------------------------------------------- status

    def restarts(self, shard: int) -> int:
        return self._restarts[shard]

    def kill_worker(self, shard: int) -> None:
        """Crash one worker on purpose (failover tests; SIGKILL for
        process workers). The health loop notices and restarts it."""
        self.directory.mark_unhealthy(shard)
        self._drop_client(shard)
        self.workers[shard].kill()

    def wait_healthy(self, timeout: float = 30.0) -> bool:
        """Block until every shard is registered healthy (or timeout)."""
        deadline = monotonic_s() + timeout
        while monotonic_s() < deadline:
            if len(self.directory.healthy_shards()) == self.n_shards:
                return True
            if self._stopping.wait(0.05):
                return False
        return False

    def status(self) -> dict[str, Any]:
        """The ``shard_status`` wire payload: one row per shard."""
        shards = []
        for entry in self.directory.snapshot():
            shard = entry["shard"]
            worker = self.workers[shard]
            entry.update(
                kind=worker.kind,
                pid=worker.pid,
                restarts=self._restarts[shard],
                ops_total=self._load[shard],
            )
            shards.append(entry)
        return {
            "n_shards": self.n_shards,
            "worker_kind": self.worker_kind,
            "shards": shards,
        }

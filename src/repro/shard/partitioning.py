"""Stable hash-ring partitioning keyed by belief world.

The paper's belief annotations are per-user: every explicit statement lives
in a world addressed by a belief path, and the *head* of that path (the
outermost believer) names the user whose shard owns it. Partitioning on the
path head therefore keeps each user's whole world tree — ``(u)``, ``(u, v)``,
``(u, v, w)``, ... — on one shard, so ``believes``/``world`` lookups and the
paper's per-world closure stay shard-local. Plain content (the empty path)
hashes under the reserved :data:`CONTENT_KEY`.

The ring is a classic consistent-hash ring with virtual nodes, built on
:mod:`hashlib` (``blake2b``) rather than the builtin ``hash()`` — the
builtin is salted per process, and the router, coordinator, and every test
must all agree on key placement across process boundaries and restarts.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Sequence

from repro.beliefsql.ast import Placeholder
from repro.errors import BeliefDBError

#: The routing key for plain content — statements with an empty belief path.
CONTENT_KEY = ""

#: Virtual nodes per shard. 64 points per shard keeps the worst/best shard
#: load spread within a few percent for realistic user counts while the ring
#: stays tiny (N*64 ints).
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """A stable 64-bit hash (process- and platform-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


def canonical_key(value: Any) -> str:
    """Normalize a path-head value (user name or uid) to a ring key.

    Strings map to themselves; anything else (integer uids, mostly) maps to
    its ``repr`` prefixed so that user ``"1"`` and uid ``1`` cannot collide.
    The router prefers resolving uids back to names before hashing — both
    spellings of one user must land on one shard — and falls back to this
    for uids it has never seen.
    """
    if isinstance(value, str):
        return value
    return f"uid:{value!r}"


class HashRing:
    """Consistent placement of belief-world keys onto ``n_shards`` shards.

    Stability contract: ``shard_for(key)`` depends only on ``(n_shards,
    vnodes, key)`` — never on process identity, insertion order, or time —
    so every router/coordinator/test computes identical placements. Growing
    the ring from N to N+1 shards moves only ~1/(N+1) of the keyspace (the
    consistent-hashing property), which is what makes future resharding an
    incremental migration instead of a full reshuffle.
    """

    def __init__(self, n_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise BeliefDBError("a hash ring needs at least one shard")
        self.n_shards = n_shards
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(vnodes):
                points.append((_hash64(f"shard-{shard}:vnode-{replica}"), shard))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._shards = [s for _, s in points]

    def shard_for(self, key: Any) -> int:
        """The shard owning ``key`` (a user name/uid or :data:`CONTENT_KEY`)."""
        h = _hash64(canonical_key(key))
        index = bisect.bisect(self._hashes, h)
        if index == len(self._hashes):
            index = 0  # wrap around the ring
        return self._shards[index]

    def spread(self, keys: Sequence[Any]) -> dict[int, int]:
        """Keys-per-shard histogram — used by balance tests and shard-status."""
        out = {shard: 0 for shard in range(self.n_shards)}
        for key in keys:
            out[self.shard_for(key)] += 1
        return out

    def __repr__(self) -> str:
        return f"<HashRing shards={self.n_shards} vnodes={self.vnodes}>"


def path_head(
    path: Sequence[Any] | None, default_path: Sequence[Any], user: Any | None
) -> Any:
    """The routing key for a programmatic op's belief path.

    ``path`` is the op's explicit path argument (``None`` means "session
    default"); ``default_path`` is the session's default path and ``user``
    its logged-in user. An empty effective path is plain content.
    """
    effective = default_path if path is None else path
    if effective:
        return effective[0]
    if path is None and user is not None:
        return user
    return CONTENT_KEY


def statement_head(
    belief_path: Sequence[Any],
    params: Sequence[Any],
    default_path: Sequence[Any],
    user: Any | None,
) -> Any:
    """The routing key for a parsed DML statement's belief spec.

    The path head may be a :class:`~repro.beliefsql.ast.Placeholder` (e.g.
    ``insert into BELIEF ? not Sightings values (...)``) — then the bound
    parameter at its index is the key. A statement with no ``BELIEF`` prefix
    routes by the session default (the worker session prepends the same
    default, so router and worker agree on the statement's world).
    """
    if belief_path:
        head = belief_path[0]
        if isinstance(head, Placeholder):
            if head.index >= len(params):
                raise BeliefDBError(
                    f"statement needs parameter {head.index} for its belief "
                    f"path but only {len(params)} were bound"
                )
            return params[head.index]
        value = getattr(head, "value", head)
        return value
    return path_head(None, default_path, user)

"""Asyncio client for the belief server — pipelined by construction.

:class:`AsyncBeliefClient` speaks the same wire protocol as the blocking
:class:`~repro.server.client.BeliefClient`, over asyncio streams. One
background *reader task* pulls response frames off the socket and resolves
them into per-request futures by request id, so any number of coroutines can
``await client.call(...)`` concurrently on one connection — that is
pipelining, with zero extra machinery at the call sites::

    async with await AsyncBeliefClient.connect(host, port) as client:
        await client.login("Carol", create=True)
        results = await asyncio.gather(*[
            client.call("insert", relation="Sightings", values=row,
                        path=None, sign="+")
            for row in rows
        ])

Cancellation is safe mid-pipeline: cancelling a caller abandons its future,
and the response that later arrives for that id is discarded without
disturbing the correlation of every other in-flight request. A connection
that dies fails **all** pending futures with :class:`ConnectionLost`; this
client never reconnects implicitly (create a new one), matching the rule
that a lost response must never be silently retried.

``max_inflight`` (default 64) bounds how many requests this client keeps on
the wire; extra callers wait on an internal semaphore, which keeps one
misbehaving loop from queueing unbounded frames into the server.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.errors import BeliefDBError
from repro.server import binproto, protocol
from repro.server.client import (
    ConnectionLost,
    RemoteStatement,
    batch_statement_params,
    iter_batch_chunks,
    merge_batch_payload,
    unwrap_response,
)
from repro.server.protocol import ProtocolError, Request, Response


class AsyncBeliefClient:
    """One pipelined asyncio connection to a belief server.

    Build with :meth:`connect`; use as an async context manager or call
    :meth:`close` explicitly. All ops are coroutines; the generic
    :meth:`call` covers anything without a convenience wrapper.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_inflight: int = 64,
        codec: Any = binproto.JSON_CODEC,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._codec = codec
        self._request_id = 0
        #: request id -> future awaiting that response.
        self._pending: dict[int, asyncio.Future] = {}
        self._window = asyncio.Semaphore(max(1, max_inflight))
        self._closed = False
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 5433,
        timeout: float = 30.0,
        max_inflight: int = 64,
        wire: str = "auto",
    ) -> "AsyncBeliefClient":
        """Open a connection; raises :class:`ConnectionLost` on failure.

        ``wire`` negotiates the frame codec before the reader task starts
        (the one moment the connection is guaranteed quiet): ``auto``
        upgrades to binary when the server offers it and silently stays
        on JSON against older servers, ``json`` skips the hello entirely,
        and ``binary`` raises :class:`ProtocolError` unless the upgrade
        actually happens.
        """
        binproto.check_wire_mode(wire)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout=timeout
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionLost(
                f"could not connect to {host}:{port}: {exc}"
            ) from exc
        try:
            codec = await asyncio.wait_for(
                cls._negotiate(reader, writer, wire), timeout=timeout
            )
        except asyncio.TimeoutError as exc:
            writer.close()
            raise ConnectionLost(
                f"wire negotiation with {host}:{port} timed out"
            ) from exc
        except (OSError, asyncio.IncompleteReadError) as exc:
            writer.close()
            raise ConnectionLost(
                f"connection to server lost during wire negotiation: {exc}"
            ) from exc
        except BaseException:
            writer.close()
            raise
        return cls(reader, writer, max_inflight=max_inflight, codec=codec)

    @staticmethod
    async def _negotiate(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter, wire: str
    ) -> Any:
        """The hello exchange, on the JSON floor; returns the codec."""
        if wire == "json":
            return binproto.JSON_CODEC
        request = Request(
            id=0, op=binproto.HELLO_OP,
            params={
                "codecs": binproto.client_offer(wire),
                "version": binproto.VERSION,
            },
        )
        await protocol.write_frame_async(writer, request.to_wire())
        payload = await protocol.read_frame_async(reader)
        if payload is None:
            raise ConnectionLost(
                "server closed the connection during wire negotiation"
            )
        response = Response.from_wire(payload)
        if response.id != request.id:
            raise ProtocolError(
                f"hello response id {response.id} does not match the "
                f"hello request id {request.id}"
            )
        if not response.ok:
            error = response.error or {}
            if "unknown operation" in error.get("message", ""):
                if wire == "binary":
                    raise ProtocolError(
                        "wire='binary' requested but the server does not "
                        "speak the hello handshake"
                    )
                return binproto.JSON_CODEC
            unwrap_response(response)  # raises the travelled error, typed
        result = response.result if isinstance(response.result, dict) else {}
        chosen = result.get("codec", binproto.CODEC_JSON)
        if chosen == binproto.CODEC_BINARY:
            return binproto.BinaryCodec()
        if chosen == binproto.CODEC_JSON:
            if wire == "binary":
                raise ProtocolError(
                    "wire='binary' requested but the server negotiated "
                    "the connection down to JSON"
                )
            return binproto.JSON_CODEC
        raise ProtocolError(f"server chose an unknown wire codec {chosen!r}")

    # -------------------------------------------------------------- plumbing

    async def _read_loop(self) -> None:
        """Resolve response frames into pending futures, forever.

        Ends — failing every pending future — on EOF, an I/O error, a
        malformed frame, or a response id that matches no pending request
        (including cancelled-and-already-reaped ids; those are impossible
        to tell apart from garbage only if the future was *removed*, so
        cancelled futures stay registered until their response arrives and
        is discarded).
        """
        failure: BaseException = ConnectionLost("server closed the connection")
        try:
            while True:
                payload = await self._codec.read_async(self._reader)
                if payload is None:
                    break
                response = Response.from_wire(payload)
                future = self._pending.pop(response.id, None)
                if future is None:
                    failure = ProtocolError(
                        f"response id {response.id} does not match any "
                        "in-flight request"
                    )
                    break
                if not future.done():  # cancelled callers just drop theirs
                    future.set_result(response)
        except (OSError, ProtocolError, asyncio.IncompleteReadError) as exc:
            failure = (
                exc if isinstance(exc, ProtocolError)
                else ConnectionLost(f"connection to server lost: {exc}")
            )
        except asyncio.CancelledError:
            failure = ConnectionLost("client is closed")
        finally:
            self._closed = True
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
                    # Cancelled callers abandoned their futures; mark the
                    # exception retrieved so their teardown stays silent.
                    future.exception()
            self._pending.clear()
            self._writer.close()

    async def call(self, op: str, **params: Any) -> Any:
        """Send one request; await and return its result (or raise).

        Concurrent calls pipeline automatically. Cancelling this coroutine
        leaves the request in flight server-side (it may still be applied —
        same truth as a lost response); its eventual response is discarded.
        """
        if self._closed:
            raise ConnectionLost("client is closed")
        async with self._window:
            self._request_id += 1
            request = Request(id=self._request_id, op=op, params=params)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._pending[request.id] = future
            try:
                await self._codec.write_async(
                    self._writer, request.to_wire()
                )
            except ProtocolError:
                # Local encoding failure: nothing reached the wire, the
                # connection survives — surface the real error.
                self._pending.pop(request.id, None)
                raise
            except (OSError, ConnectionResetError) as exc:
                self._pending.pop(request.id, None)
                raise ConnectionLost(
                    f"connection to server lost: {exc}"
                ) from exc
            response = await asyncio.shield(future)
        return unwrap_response(response)

    @property
    def inflight(self) -> int:
        """Requests currently awaiting a response."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    async def close(self) -> None:
        """Tear the connection down; pending calls raise ConnectionLost."""
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        try:
            await self._writer.wait_closed()
        except (OSError, ConnectionResetError):
            pass

    async def __aenter__(self) -> "AsyncBeliefClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------- ops

    async def ping(self) -> bool:
        return await self.call("ping") == "pong"

    async def login(self, user: Any, create: bool = False) -> dict[str, Any]:
        return await self.call("login", user=user, create=create)

    async def whoami(self) -> dict[str, Any]:
        return await self.call("whoami")

    async def set_path(self, path: Sequence[Any]) -> dict[str, Any]:
        return await self.call("set_path", path=list(path))

    async def add_user(self, name: str | None = None) -> Any:
        return await self.call("add_user", name=name)

    async def insert(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        return await self.call(
            "insert", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    async def dispute(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
    ) -> bool:
        return await self.insert(relation, values, path=path, sign="-")

    async def execute(self, sql: str) -> list[list[Any]] | bool | int:
        return await self.call("execute", sql=sql)

    async def prepare(self, sql: str) -> RemoteStatement:
        info = await self.call("prepare", sql=sql)
        return RemoteStatement(
            id=info["stmt"],
            kind=info["kind"],
            param_count=info["param_count"],
            columns=tuple(info["columns"]),
        )

    async def execute_prepared(
        self,
        statement: RemoteStatement | str,
        params: Sequence[Any] = (),
        max_rows: int | None = None,
    ) -> dict[str, Any]:
        call_params: dict[str, Any] = {"params": list(params)}
        if isinstance(statement, RemoteStatement):
            call_params["stmt"] = statement.id
        else:
            call_params["sql"] = statement
        if max_rows is not None:
            call_params["max_rows"] = max_rows
        return await self.call("execute_prepared", **call_params)

    async def execute_batch(
        self,
        statement: RemoteStatement | str,
        param_rows: Sequence[Sequence[Any]],
        chunk_rows: int = 256,
    ) -> dict[str, Any]:
        """Batched DML: one round trip / write-lock / WAL fsync per chunk."""
        call_params = batch_statement_params(statement)
        payload: dict[str, Any] | None = None
        for chunk in iter_batch_chunks(param_rows, chunk_rows):
            payload = merge_batch_payload(payload, await self.call(
                "execute_batch", param_rows=chunk, **call_params,
            ))
        assert payload is not None
        return payload

    async def believes(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        return await self.call(
            "believes", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    async def stats(self) -> dict[str, Any]:
        return await self.call("stats")

    async def lifecycle_propose(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
        *,
        actor: Any = None,
        confidence: float = 1.0,
        decay: str = "none",
        derived_from: Sequence[Any] = (),
    ) -> dict[str, Any]:
        return await self.call(
            "lifecycle", action="propose", relation=relation,
            values=list(values),
            path=None if path is None else list(path), sign=sign,
            actor=actor, confidence=confidence, decay=decay,
            derived_from=list(derived_from),
        )

    async def lifecycle_transition(
        self,
        belief: str,
        to: str,
        *,
        expect: str | None = None,
        reason: str | None = None,
        actor: Any = None,
    ) -> dict[str, Any]:
        return await self.call(
            "lifecycle", action="transition", belief=belief, to=to,
            expect=expect, reason=reason, actor=actor,
        )

    async def audit_log(
        self, belief: str | None = None, limit: int | None = None
    ) -> list[dict[str, Any]]:
        return await self.call("audit", kind="log", belief=belief, limit=limit)

    async def lifecycle_queue(
        self,
        path: Sequence[Any] | None = None,
        status: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        return await self.call(
            "audit", kind="queue",
            path=None if path is None else list(path),
            status=status, limit=limit,
        )

    async def provenance(self, belief: str) -> dict[str, Any]:
        return await self.call("audit", kind="provenance", belief=belief)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"<AsyncBeliefClient ({state}, {len(self._pending)} in flight)>"


__all__ = ["AsyncBeliefClient", "ConnectionLost", "BeliefDBError"]

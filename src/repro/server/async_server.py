"""The pipelined asyncio server core.

:class:`AsyncBeliefServer` serves the same wire protocol, ops, and
concurrency *semantics* as the threaded :class:`~repro.server.server
.BeliefServer` — one shared :class:`~repro.bdms.bdms.BeliefDBMS` with the
same discipline (MVCC-pinned lock-free reads, exclusively-locked writes),
the same per-session statement/cursor registries,
the same op log and background checkpoint thread — but replaces
thread-per-connection blocking I/O with a single asyncio event loop and
**request pipelining**:

* each connection is one reader coroutine that keeps pulling frames off the
  socket without waiting for earlier requests to finish;
* every well-formed request becomes a task that executes the (CPU-bound,
  lock-guarded) database work on a small thread pool and then writes its
  response frame — tagged with the request's id — as soon as it completes,
  so responses may return **out of order**;
* ``max_inflight`` bounds how many of one connection's requests may execute
  concurrently; beyond it the reader stops pulling frames and TCP
  backpressure does the rest.

Why this wins: with a blocking request-per-connection server, every op pays
a full client round trip plus a lock handoff before the *next* op of that
connection can even be read. A pipelined connection keeps a window of
requests parked server-side, so the lock never goes idle waiting on the
network — see ``benchmarks/test_server_throughput.py``.

The event loop runs on a dedicated daemon thread, so the server presents
the exact same synchronous ``start()`` / ``stop()`` / context-manager
lifecycle as the threaded server; swap one class name (or pass ``--async``
to ``repro serve``) and every client — blocking, pipelined, or
:class:`~repro.server.async_client.AsyncBeliefClient` — keeps working.

Ordering contract: requests of one connection are *started* in arrival
order but run concurrently; see :mod:`repro.server.protocol` and
``docs/wire-protocol.md`` for what clients may and may not pipeline.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.bdms.bdms import BeliefDBMS
from repro.errors import BeliefDBError, FrameTooLargeError
from repro.obs.clock import monotonic_s
from repro.obs.trace import DEFAULT_CAPACITY, DEFAULT_THRESHOLD_MS
from repro.server import binproto, protocol
from repro.server.protocol import ProtocolError, Request, Response
from repro.server.server import BeliefServer
from repro.server.session import ClientSession

#: Default cap on one connection's concurrently executing requests.
DEFAULT_MAX_INFLIGHT = 32

#: Default executor width for the lock-guarded database work.
DEFAULT_WORKER_THREADS = 8


class AsyncBeliefServer(BeliefServer):
    """Pipelined asyncio server over one shared :class:`BeliefDBMS`.

    Parameters are those of :class:`~repro.server.server.BeliefServer` plus:

    max_inflight:
        Per-connection bound on concurrently executing requests. ``1``
        degenerates to the threaded server's strictly-serial-per-connection
        behavior (still on the async core).
    worker_threads:
        Size of the thread pool that runs the lock-guarded database work.
        Reads share the RW lock across the pool; writes serialize on it
        exactly as in the threaded server, so the op log order is still the
        write-lock acquisition order.
    """

    def __init__(
        self,
        db: BeliefDBMS,
        host: str = "127.0.0.1",
        port: int = 0,
        record_ops: bool = False,
        checkpoint_interval: float | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        worker_threads: int = DEFAULT_WORKER_THREADS,
        max_sessions: int | None = None,
        max_inflight_requests: int | None = None,
        slow_op_ms: float | None = DEFAULT_THRESHOLD_MS,
        slow_op_capacity: int = DEFAULT_CAPACITY,
        max_frame_bytes: int | None = None,
        wire: str = "auto",
    ) -> None:
        super().__init__(
            db, host=host, port=port, record_ops=record_ops,
            checkpoint_interval=checkpoint_interval,
            max_sessions=max_sessions,
            max_inflight_requests=max_inflight_requests,
            slow_op_ms=slow_op_ms,
            slow_op_capacity=slow_op_capacity,
            max_frame_bytes=max_frame_bytes,
            wire=wire,
        )
        if max_inflight < 1:
            raise BeliefDBError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.worker_threads = max(1, worker_threads)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._aio_server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "AsyncBeliefServer":
        if self._loop_thread is not None:
            raise BeliefDBError("server already started")
        self._stopping.clear()
        self._started.clear()
        self._startup_error = None
        self._executor = ThreadPoolExecutor(
            max_workers=self.worker_threads,
            thread_name_prefix="belief-aio-worker",
        )
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="belief-aio-loop", daemon=True
        )
        self._loop_thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            error = self._startup_error
            self.stop()
            raise BeliefDBError(f"async server failed to start: {error}")
        if self.address is None:
            self.stop()
            raise BeliefDBError("async server did not bind within 30s")
        self._started_at = monotonic_s()
        self._start_checkpoint_thread()
        return self

    def stop(self) -> None:
        """Stop accepting, fail open connections, join the loop thread."""
        self._stopping.set()
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._request_shutdown)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10)
            self._loop_thread = None
        if self._checkpoint_thread is not None:
            self._checkpoint_thread.join(timeout=5)
            self._checkpoint_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._loop = None
        self._aio_server = None
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._loop_thread is not None

    def __enter__(self) -> "AsyncBeliefServer":
        return self.start()

    # ------------------------------------------------------------- loop body

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except BaseException as exc:  # noqa: BLE001 — surface via start()
            self._startup_error = exc
        finally:
            try:
                # Give cancelled tasks one sweep to unwind before closing.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                # Drain the worker pool BEFORE closing the loop: late
                # run_in_executor completions call back into the loop, and a
                # stopped-but-open loop absorbs them quietly where a closed
                # one would raise in the worker threads.
                if self._executor is not None:
                    self._executor.shutdown(wait=True)
                loop.close()
            self._started.set()  # in case bind failed before setting

    def _request_shutdown(self) -> None:
        """Run inside the loop: close the listener and live connections."""
        if self._aio_server is not None:
            self._aio_server.close()
        for task in asyncio.all_tasks(self._loop):
            if getattr(task, "_belief_conn", False):
                task.cancel()

    async def _serve(self) -> None:
        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            backlog=64, reuse_address=True,
        )
        self._aio_server = server
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass

    # ----------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            task._belief_conn = True  # type: ignore[attr-defined]
        peername = writer.get_extra_info("peername") or ("?", 0)
        session = ClientSession(f"{peername[0]}:{peername[1]}")
        with self._state_lock:
            self.stats["connections_total"] += 1
            self.stats["connections_active"] += 1
        self._conn_counter_metric.inc()
        inflight = asyncio.Semaphore(self.max_inflight)
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        # One-slot codec holder shared between this reader loop and the
        # in-flight writer tasks: every connection starts on the JSON
        # floor, a hello may upgrade the slot. A holder (not a local)
        # because responses are written by tasks spawned before the swap.
        codec_ref: list[Any] = [binproto.JSON_CODEC]
        try:
            if self._over_session_limit():
                await self._refuse_connection_async(reader, writer)
                return  # the finally block closes and un-counts it
            while not self._stopping.is_set():
                try:
                    payload = await codec_ref[0].read_async(
                        reader, self.max_frame_bytes
                    )
                except (ProtocolError, OSError):
                    with self._state_lock:
                        self.stats["protocol_errors"] += 1
                    break  # fail closed: drop the connection
                if payload is None:
                    break  # clean EOF
                try:
                    request = Request.from_wire(payload)
                except ProtocolError:
                    with self._state_lock:
                        self.stats["protocol_errors"] += 1
                    break
                if request.op == binproto.HELLO_OP:
                    # Codec switch barrier: this server answers out of
                    # order, so all in-flight responses must flush in the
                    # old codec before the hello response commits the new
                    # one. The client mirrors this contract by sending
                    # hello only on an otherwise-quiet connection.
                    if tasks:
                        await asyncio.gather(*tasks, return_exceptions=True)
                    response, next_codec = self._negotiate_wire(request)
                    try:
                        async with write_lock:
                            await codec_ref[0].write_async(
                                writer, response.to_wire(),
                                self.max_frame_bytes,
                            )
                    except (ProtocolError, FrameTooLargeError, OSError):
                        break
                    codec_ref[0] = next_codec
                    continue
                # Backpressure: beyond max_inflight the reader stops pulling
                # frames, so the client's sends eventually block in TCP.
                await inflight.acquire()
                handler = asyncio.ensure_future(self._run_request(
                    session, request, writer, write_lock, inflight, codec_ref
                ))
                tasks.add(handler)
                handler.add_done_callback(tasks.discard)
        except asyncio.CancelledError:
            pass  # server shutdown; fall through to cleanup
        finally:
            # Let already-accepted requests finish (their responses may
            # still be writable on a half-closed socket); a request racing
            # a dead socket just fails its write silently below.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            session.abandon_transaction()  # an open txn dies with the session
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
            with self._state_lock:
                self.stats["connections_active"] -= 1

    async def _refuse_connection_async(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Async twin of :meth:`BeliefServer._refuse_connection`: answer an
        over-limit connection's first request with ``SERVER_OVERLOADED``."""
        self._count_shed("sessions")
        try:
            payload = await protocol.read_frame_async(
                reader, self.max_frame_bytes
            )
            if payload is None:
                return
            request = Request.from_wire(payload)
            await protocol.write_frame_async(writer, Response.failure(
                request.id, self._overload_error("sessions")
            ).to_wire(), self.max_frame_bytes)
        except (ProtocolError, FrameTooLargeError, OSError,
                asyncio.CancelledError):
            pass

    async def _run_request(
        self,
        session: ClientSession,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        inflight: asyncio.Semaphore,
        codec_ref: list[Any],
    ) -> None:
        """Execute one request on the worker pool; write its response frame.

        ``_dispatch`` is the exact code path the threaded server runs —
        parse/resolve outside the lock, read/write guard, op body, stats,
        error envelopes — so the two servers cannot drift semantically.
        """
        loop = asyncio.get_running_loop()
        try:
            try:
                assert self._executor is not None
                response = await loop.run_in_executor(
                    self._executor, self._dispatch, session, request
                )
                # Encode in the connection's current codec. The encode
                # call is synchronous (no await inside), so the binary
                # codec's reused buffer cannot be interleaved by another
                # task; the frame bytes it returns are a private copy.
                codec = codec_ref[0]
                try:
                    frame = codec.encode(
                        response.to_wire(), self.max_frame_bytes
                    )
                except FrameTooLargeError as exc:
                    # The response outgrew the ceiling; substitute a small
                    # typed error frame so the connection survives — same
                    # behavior as the threaded core.
                    frame = codec.encode(
                        Response.failure(request.id, exc).to_wire(),
                        self.max_frame_bytes,
                    )
            except ProtocolError:
                # The response cannot be framed at all (not serializable).
                # Fail closed exactly like the threaded core: drop the
                # connection — leaving it open would park the client on a
                # reply that can never arrive.
                with self._state_lock:
                    self.stats["protocol_errors"] += 1
                writer.close()
                return
            async with write_lock:
                writer.write(frame)
                await writer.drain()
        except (OSError, asyncio.CancelledError,
                RuntimeError, ConnectionResetError):
            # The connection died under us (or shutdown cancelled the
            # write); the reader loop notices on its next read.
            pass
        finally:
            inflight.release()

    # The threaded accept loop and per-connection threads never run here.
    def _accept_loop(self) -> None:  # pragma: no cover — not used
        raise BeliefDBError("AsyncBeliefServer has no threaded accept loop")

    def _serve_connection(self, *args: Any) -> None:  # pragma: no cover
        raise BeliefDBError("AsyncBeliefServer serves connections on asyncio")

"""binary-v1: the negotiated compact wire framing.

The JSON protocol (:mod:`repro.server.protocol`) is the compatibility
floor — every server speaks it, every connection starts in it, and a peer
that never negotiates stays on it forever. This module adds the optional
``binary-v1`` codec a client may negotiate with a ``hello`` exchange:

* a ``struct``-packed 16-byte header — magic, version, frame kind /
  op-code, request id, body length — replaces the JSON envelope, so the
  hot fields (``id``, ``op``, ``ok``) never touch a serializer at all;
* a msgpack-style compact body for the known payload shapes: request
  params travel *positionally* against a per-op layout (a presence
  bitmask plus the values, no key strings on the wire), small values use
  one-byte tags, short all-string lists use a vectorized encoding (one
  length table + one joined blob instead of per-cell tags);
* a JSON escape hatch for everything unshaped: ops without a code,
  params outside the registered layout, oversized integers, deep or
  large collections — any of those makes the frame (or subtree) travel
  as plain JSON *inside* the binary framing, so the codec is never less
  expressive, and never slower than JSON where C-accelerated ``json``
  would win (large row matrices deliberately take this path).

Header layout (big-endian)::

    +-------+-----+------+--------------+----------+-----------+
    | magic | ver | kind |  request id  | body len |   body    |
    |  2 B  | 1 B | 1 B  |  8 B (i64)   | 4 B (u32)| len bytes |
    +-------+-----+------+--------------+----------+-----------+

``kind`` is an op-code (:data:`OP_TABLE` index) for requests, or one of
the reserved frame kinds (response-ok, response-error, JSON-escape
request/response). Every decode failure — bad magic, wrong version,
unknown kind, announced length over the ceiling, truncated header or
body, malformed body bytes, trailing garbage — raises the same typed
:class:`~repro.server.protocol.ProtocolError` the JSON codec raises, and
EOF is clean only on a frame boundary.

Negotiation (see ``docs/wire-protocol.md``): the client sends a normal
``hello`` request listing the codecs it speaks, in preference order; the
server answers with the codecs *it* speaks and the one it chose (the
first client offer it supports), and both sides switch immediately after
that response. A server that predates ``hello`` answers "unknown
operation" — the client silently stays on JSON. The WAL never changes
codec: durability logs JSON regardless of what carried the write.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

from repro.errors import FrameTooLargeError
from repro.server import protocol
from repro.server.protocol import ProtocolError

#: Codec names as they travel in the ``hello`` exchange.
CODEC_JSON = "json"
CODEC_BINARY = "binary-v1"

#: ``wire=`` modes accepted by servers, clients, and ``repro serve``.
#: ``json`` disables binary negotiation entirely; ``auto`` negotiates
#: binary when the peer offers it; ``binary`` is ``auto`` server-side and
#: *requires* a successful binary negotiation client-side (debug mode).
WIRE_MODES = ("json", "binary", "auto")

#: The transport-level negotiation op. Deliberately NOT in
#: :data:`~repro.server.protocol.OPS`: it is handled by the connection
#: loop (switching codecs is a framing concern, not a database op), and a
#: pre-hello server answers it with a normal "unknown operation" error —
#: which is exactly the signal for the client to stay on JSON.
HELLO_OP = "hello"

MAGIC = b"\xb1\xdb"
VERSION = 1

_HEADER = struct.Struct(">2sBBqI")
HEADER_SIZE = _HEADER.size  # 16
_HEADER_PAD = bytes(HEADER_SIZE)

#: Reserved frame kinds (request op-codes occupy 0x00..0xDF).
KIND_RESPONSE_OK = 0xE0
KIND_RESPONSE_ERR = 0xE1
KIND_JSON_REQUEST = 0xF0
KIND_JSON_RESPONSE = 0xF1

#: The binary-v1 op-code table: ``kind`` byte -> op name, by index.
#: Part of the wire format — appending is compatible, reordering is not.
#: An op missing here (anything added to OPS later) simply travels as a
#: JSON-escape frame until the table catches up, so drift degrades to
#: the floor instead of breaking.
OP_TABLE = (
    HELLO_OP,
    "ping", "login", "logout", "whoami", "set_path",
    "add_user", "users",
    "insert", "delete", "execute",
    "prepare", "execute_prepared", "execute_batch", "close_statement",
    "fetch", "close_cursor",
    "begin", "commit", "rollback",
    "query", "believes", "world", "worlds",
    "stats", "metrics", "kripke", "describe",
    "shard_status",
)
OP_CODES = {name: code for code, name in enumerate(OP_TABLE)}

#: Positional parameter layouts, one per op (order is wire format; ≤ 8
#: names so presence fits one bitmask byte). A request whose params carry
#: any key outside its op's layout escapes to JSON — unshaped never means
#: unsendable.
PARAM_LAYOUTS: dict[str, tuple[str, ...]] = {
    HELLO_OP: ("codecs", "version"),
    "ping": (),
    "login": ("user", "create"),
    "logout": (),
    "whoami": (),
    "set_path": ("path",),
    "add_user": ("name",),
    "users": (),
    "insert": ("relation", "values", "path", "sign"),
    "delete": ("relation", "values", "path", "sign"),
    "execute": ("sql",),
    "prepare": ("sql",),
    "execute_prepared": ("stmt", "sql", "params", "max_rows"),
    "execute_batch": ("stmt", "sql", "param_rows"),
    "close_statement": ("stmt",),
    "fetch": ("cursor", "n"),
    "close_cursor": ("cursor",),
    "begin": (),
    "commit": (),
    "rollback": (),
    "query": ("bcq",),
    "believes": ("relation", "values", "path", "sign"),
    "world": ("path",),
    "worlds": (),
    "stats": (),
    "metrics": (),
    "kripke": (),
    "describe": (),
    "shard_status": (),
}

#: Strings every session sends constantly — result-payload keys, status
#: words — interned to a 2-byte tag. Part of the wire format: append
#: only, never reorder.
COMMON_STRINGS = (
    "kind", "columns", "rows", "rowcount", "status", "elapsed_ms",
    "cursor", "has_more", "pong", "select", "insert", "delete",
    "update", "stmt", "param_count", "closed", "discarded", "uid",
    "name", "path", "user", "sign", "+", "-",
    "peer", "user_name", "default_path", "statements", "cursors",
    "transaction", "commit", "rollback", "begin", "worlds", "users",
)
_COMMON_CODES = {s: i for i, s in enumerate(COMMON_STRINGS)}

# Hot-path lookup tables, precomputed once: one dict hit per frame
# instead of shape-set construction + two lookups per encode.
# ``execute_batch`` is deliberately absent: its payload is a parameter
# matrix, which C json serializes faster than any per-cell Python loop,
# so the whole frame always takes the JSON escape (measured, not taste).
_OP_ENC = {
    op: (code, PARAM_LAYOUTS[op], frozenset(PARAM_LAYOUTS[op]))
    for op, code in OP_CODES.items()
    if op != "execute_batch"
}
_REQ_KEYS = frozenset(("id", "op", "params"))
_RESP_KEYS = frozenset(("id", "ok", "result", "error"))
_ERR_KEYS = frozenset(("type", "message"))

# ------------------------------------------------------------- body tags
#
# msgpack-inspired one-byte tags. fix ranges first (they are also the hot
# ones), then the explicit tags. 0xC4..0xC7 are this codec's own
# extensions (vectorized strings, interned strings, JSON subtree).

_TAG_NIL = 0xC0
_TAG_FALSE = 0xC2
_TAG_TRUE = 0xC3
_TAG_STRVEC = 0xC4     # u8 count, u32 blob length, 0x1F-joined UTF-8 cells
_TAG_COMMON = 0xC6     # u8 index into COMMON_STRINGS
_TAG_JSON = 0xC7       # u32 length + UTF-8 JSON bytes (escape subtree)
_TAG_MAPLAYOUT = 0xC8  # u8 count, u16 blob length, 0x1F-joined keys, values
_TAG_F64 = 0xCB
_TAG_U16 = 0xCD
_TAG_I64 = 0xD3
_TAG_STR8 = 0xD9
_TAG_STR16 = 0xDA
_TAG_STR32 = 0xDB
_TAG_ARR16 = 0xDC
_TAG_MAP16 = 0xDE

_F64 = struct.Struct(">d")
_I64 = struct.Struct(">q")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")

#: The cell separator for STRVEC / MAPLAYOUT blobs: ASCII unit separator,
#: which never occurs in real identifiers, SQL, or status strings. Cells
#: that DO contain it simply take a slower encoding — never corruption
#: (the encoder validates with one ``str.count`` before committing).
_SEP = "\x1f"

#: Encoder-side map-layout cache: tuple of keys (in dict order) ->
#: prebuilt ``MAPLAYOUT`` prefix bytes, or False for key tuples that
#: cannot take the layout encoding. Response payloads reuse a handful of
#: fixed key sets, so this converges instantly; bounded against
#: adversarially unique key sets.
_MAP_PREFIXES: dict[tuple, Any] = {}
#: Decoder-side inverse: keys blob -> tuple of key strings.
_KEY_TUPLES: dict[bytes, tuple] = {}
_MAX_LAYOUT_CACHE = 1024

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Containers larger than these go as JSON subtrees: C-accelerated
#: ``json`` beats a per-item Python loop past a handful of elements, so
#: the escape hatch is also the fast path for big results.
_MAX_BIN_LIST = 16
_MAX_BIN_MAP = 8
_MAX_STRVEC = 16

#: Decode-side nesting ceiling — adversarial frames cannot recurse the
#: decoder into a stack blowout.
_MAX_DEPTH = 32


class _Unshaped(Exception):
    """Internal: this value/payload needs the JSON escape hatch."""


def _json_bytes(value: Any) -> bytes:
    try:
        return json.dumps(value, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"payload is not JSON-serializable: {exc}"
        ) from exc


def _pack_value(out: bytearray, v: Any, depth: int = 0) -> None:
    """Append one value's binary encoding to ``out``.

    Raises :class:`_Unshaped` for values only JSON can carry faithfully
    (non-string map keys, integers beyond int64) — the *caller* decides
    whether to escape the subtree or the whole frame.
    """
    t = type(v)
    if t is str:
        ci = _COMMON_CODES.get(v)
        if ci is not None:
            out.append(_TAG_COMMON)
            out.append(ci)
            return
        try:
            b = v.encode("utf-8")
        except UnicodeEncodeError:
            # Unpaired surrogates: JSON (ensure_ascii) carries them, so
            # the escape hatch must too — never less expressive.
            raise _Unshaped("string is not UTF-8-encodable") from None
        n = len(b)
        if n < 32:
            out.append(0xA0 | n)
        elif n < 256:
            out.append(_TAG_STR8)
            out.append(n)
        elif n < 65536:
            out.append(_TAG_STR16)
            out += _U16.pack(n)
        else:
            out.append(_TAG_STR32)
            out += _U32.pack(n)
        out += b
        return
    if t is bool:  # before int: bool is an int subclass
        out.append(_TAG_TRUE if v else _TAG_FALSE)
        return
    if t is int:
        if 0 <= v < 128:
            out.append(v)
        elif -32 <= v < 0:
            out.append(v & 0xFF)
        elif 0 <= v < 65536:
            out.append(_TAG_U16)
            out += _U16.pack(v)
        elif _INT64_MIN <= v <= _INT64_MAX:
            out.append(_TAG_I64)
            out += _I64.pack(v)
        else:
            raise _Unshaped("integer beyond int64")
        return
    if v is None:
        out.append(_TAG_NIL)
        return
    if t is float:
        out.append(_TAG_F64)
        out += _F64.pack(v)
        return
    if t is list or t is tuple:
        n = len(v)
        if 0 < n <= _MAX_STRVEC:
            # Vectorized all-string fast path: one C join + one count to
            # validate + one encode, instead of a per-cell Python loop.
            try:
                joined = _SEP.join(v)
                blob = joined.encode("utf-8")
            except (TypeError, UnicodeEncodeError):
                joined = None
            if joined is not None and joined.count(_SEP) == n - 1:
                out.append(_TAG_STRVEC)
                out.append(n)
                out += _U32.pack(len(blob))
                out += blob
                return
        if n > _MAX_BIN_LIST or (n and type(v[0]) in (list, tuple, dict)):
            # Big lists and row matrices ride the C json serializer —
            # per-cell Python recursion would be slower than the floor.
            body = _json_bytes(list(v) if t is tuple else v)
            out.append(_TAG_JSON)
            out += _U32.pack(len(body))
            out += body
            return
        if n < 16:
            out.append(0x90 | n)
        else:  # pragma: no cover — n > 16 already escaped above
            out.append(_TAG_ARR16)
            out += _U16.pack(n)
        for item in v:
            _pack_value(out, item, depth + 1)
        return
    if t is dict:
        n = len(v)
        if n > _MAX_BIN_MAP:
            body = _json_bytes(v)
            out.append(_TAG_JSON)
            out += _U32.pack(len(body))
            out += body
            return
        if n == 0:
            out.append(0x80)  # empty fixmap
            return
        # Layout-cached map: the key set of a response payload repeats on
        # every frame of a session, so its whole key section is built
        # once and replayed as one prefix append; only values pay
        # per-item cost.
        kt = tuple(v)
        prefix = _MAP_PREFIXES.get(kt)
        if prefix is None:
            prefix = _build_map_prefix(kt)
            if len(_MAP_PREFIXES) < _MAX_LAYOUT_CACHE:
                _MAP_PREFIXES[kt] = prefix
        if prefix is False:
            raise _Unshaped("map keys cannot take the layout encoding")
        out += prefix
        # Scalars inline: a per-value call into _pack_value costs more
        # than encoding the value itself at this size.
        for item in v.values():
            ti = type(item)
            if ti is str:
                ci = _COMMON_CODES.get(item)
                if ci is not None:
                    out.append(_TAG_COMMON)
                    out.append(ci)
                    continue
                try:
                    b = item.encode("utf-8")
                except UnicodeEncodeError:
                    raise _Unshaped(
                        "string is not UTF-8-encodable"
                    ) from None
                ni = len(b)
                if ni < 32:
                    out.append(0xA0 | ni)
                    out += b
                    continue
            elif ti is int:
                if 0 <= item < 128:
                    out.append(item)
                    continue
            elif item is None:
                out.append(_TAG_NIL)
                continue
            elif ti is bool:
                out.append(_TAG_TRUE if item else _TAG_FALSE)
                continue
            elif ti is float:
                out.append(_TAG_F64)
                out += _F64.pack(item)
                continue
            elif ti is list:
                n2 = len(item)
                if n2 == 0:
                    out.append(0x90)  # empty fixarray
                    continue
                if n2 <= _MAX_STRVEC:
                    try:
                        joined = _SEP.join(item)
                        blob = joined.encode("utf-8")
                    except (TypeError, UnicodeEncodeError):
                        joined = None
                    if joined is not None and joined.count(_SEP) == n2 - 1:
                        out.append(_TAG_STRVEC)
                        out.append(n2)
                        out += _U32.pack(len(blob))
                        out += blob
                        continue
            _pack_value(out, item, depth + 1)
        return
    raise _Unshaped(f"unsupported type {t.__name__}")


def _build_map_prefix(kt: tuple) -> Any:
    """The prebuilt ``MAPLAYOUT`` key section for one key tuple.

    Returns False — cached too — for key tuples the layout cannot carry:
    non-string keys (JSON-escape territory, exactly as before) or keys
    containing the separator (the whole frame then rides the escape,
    which carries any string faithfully).
    """
    try:
        joined = _SEP.join(kt)
    except TypeError:
        return False
    if joined.count(_SEP) != len(kt) - 1:
        return False
    try:
        blob = joined.encode("utf-8")
    except UnicodeEncodeError:
        return False
    if len(blob) > 65535:
        return False
    return bytes((_TAG_MAPLAYOUT, len(kt))) + _U16.pack(len(blob)) + blob


def _unpack_value(buf: bytes, i: int, depth: int = 0) -> tuple[Any, int]:
    """Decode one value at offset ``i``; returns ``(value, next offset)``.

    Fails closed with :class:`ProtocolError` on any malformed byte.
    """
    if depth > _MAX_DEPTH:
        raise ProtocolError("binary frame nests deeper than the ceiling")
    try:
        tag = buf[i]
    except IndexError:
        raise ProtocolError("binary frame body is truncated") from None
    i += 1
    # Dispatch in measured frequency order: ints, scalar singletons and
    # interned strings first (response payload values), then strings,
    # then the containers.
    if tag < 0x80:
        return tag, i
    if tag == _TAG_COMMON:
        try:
            idx = buf[i]
        except IndexError:
            raise ProtocolError("binary frame body is truncated") from None
        if idx >= len(COMMON_STRINGS):
            raise ProtocolError(f"unknown interned-string index {idx}")
        return COMMON_STRINGS[idx], i + 1
    if tag == _TAG_NIL:
        return None, i
    if tag == _TAG_TRUE:
        return True, i
    if tag == _TAG_FALSE:
        return False, i
    if 0xA0 <= tag < 0xC0:  # fixstr
        return _take_str(buf, i, tag & 0x1F)
    if tag == _TAG_F64:
        if len(buf) < i + 8:
            raise ProtocolError("binary frame body is truncated")
        return _F64.unpack_from(buf, i)[0], i + 8
    if tag >= 0xE0:  # negative fixint
        return tag - 256, i
    if tag == _TAG_STRVEC:
        if len(buf) < i + 5:
            raise ProtocolError("binary frame body is truncated")
        n = buf[i]
        if not 0 < n <= _MAX_STRVEC:
            raise ProtocolError(f"string-vector count {n} is out of range")
        (blen,) = _U32.unpack_from(buf, i + 1)
        i += 5
        end = i + blen
        if end > len(buf):
            raise ProtocolError("binary frame body is truncated")
        try:
            cells = buf[i:end].decode("utf-8").split(_SEP)
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"invalid UTF-8 in binary frame: {exc}") from exc
        if len(cells) != n:
            raise ProtocolError(
                f"string-vector blob holds {len(cells)} cells, "
                f"header announced {n}"
            )
        return cells, end
    if tag == _TAG_MAPLAYOUT:
        if len(buf) < i + 3:
            raise ProtocolError("binary frame body is truncated")
        n = buf[i]
        (blen,) = _U16.unpack_from(buf, i + 1)
        i += 3
        end = i + blen
        if end > len(buf):
            raise ProtocolError("binary frame body is truncated")
        blob = buf[i:end]
        keys = _KEY_TUPLES.get(blob)
        if keys is None:
            try:
                keys = tuple(blob.decode("utf-8").split(_SEP))
            except UnicodeDecodeError as exc:
                raise ProtocolError(
                    f"invalid UTF-8 in binary frame: {exc}"
                ) from exc
            if len(_KEY_TUPLES) < _MAX_LAYOUT_CACHE:
                _KEY_TUPLES[bytes(blob)] = keys
        if len(keys) != n:
            raise ProtocolError(
                f"map-layout blob holds {len(keys)} keys, "
                f"header announced {n}"
            )
        i = end
        out_m: dict[str, Any] = {}
        end_of = len(buf)
        # Scalars inline, mirroring the encode loop: response payload
        # values are mostly fixints, singletons and short strings, and a
        # per-value call into ``_unpack_value`` would dominate their cost.
        for k in keys:
            if i >= end_of:
                raise ProtocolError("binary frame body is truncated")
            t2 = buf[i]
            if t2 < 0x80:
                out_m[k] = t2
                i += 1
                continue
            if 0xA0 <= t2 < 0xC0:  # fixstr
                j = i + 1 + (t2 & 0x1F)
                if j > end_of:
                    raise ProtocolError("binary frame body is truncated")
                try:
                    out_m[k] = buf[i + 1:j].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(
                        f"invalid UTF-8 in binary frame: {exc}"
                    ) from exc
                i = j
                continue
            if t2 == _TAG_COMMON and i + 1 < end_of:
                idx = buf[i + 1]
                if idx >= len(COMMON_STRINGS):
                    raise ProtocolError(f"unknown interned-string index {idx}")
                out_m[k] = COMMON_STRINGS[idx]
                i += 2
                continue
            if t2 == _TAG_NIL:
                out_m[k] = None
                i += 1
                continue
            if t2 == _TAG_TRUE:
                out_m[k] = True
                i += 1
                continue
            if t2 == _TAG_FALSE:
                out_m[k] = False
                i += 1
                continue
            if t2 == _TAG_F64:
                if i + 9 > end_of:
                    raise ProtocolError("binary frame body is truncated")
                out_m[k] = _F64.unpack_from(buf, i + 1)[0]
                i += 9
                continue
            if t2 == 0x90:  # empty fixarray
                out_m[k] = []
                i += 1
                continue
            if t2 == 0x80:  # empty fixmap
                out_m[k] = {}
                i += 1
                continue
            if t2 == _TAG_STRVEC:  # belief paths, column name lists
                if i + 6 > end_of:
                    raise ProtocolError("binary frame body is truncated")
                nv = buf[i + 1]
                if not 0 < nv <= _MAX_STRVEC:
                    raise ProtocolError(
                        f"string-vector count {nv} is out of range"
                    )
                (blen,) = _U32.unpack_from(buf, i + 2)
                j = i + 6 + blen
                if j > end_of:
                    raise ProtocolError("binary frame body is truncated")
                try:
                    cells = buf[i + 6:j].decode("utf-8").split(_SEP)
                except UnicodeDecodeError as exc:
                    raise ProtocolError(
                        f"invalid UTF-8 in binary frame: {exc}"
                    ) from exc
                if len(cells) != nv:
                    raise ProtocolError(
                        f"string-vector blob holds {len(cells)} cells, "
                        f"header announced {nv}"
                    )
                out_m[k] = cells
                i = j
                continue
            out_m[k], i = _unpack_value(buf, i, depth + 1)
        return out_m, i
    if tag < 0x90:  # fixmap (rare: only non-layout-encodable key sets)
        out: dict[str, Any] = {}
        n_entries = tag & 0x0F
        end_of = len(buf)
        for _ in range(n_entries):
            # Inline fast path for interned-string keys — the dominant
            # key encoding in response payloads.
            if i + 1 < end_of and buf[i] == _TAG_COMMON:
                idx = buf[i + 1]
                if idx >= len(COMMON_STRINGS):
                    raise ProtocolError(f"unknown interned-string index {idx}")
                k = COMMON_STRINGS[idx]
                i += 2
            else:
                k, i = _unpack_value(buf, i, depth + 1)
                if type(k) is not str:
                    raise ProtocolError("binary map key is not a string")
            v, i = _unpack_value(buf, i, depth + 1)
            out[k] = v
        return out, i
    if tag < 0xA0:  # fixarray (rare: mixed-type or separator-bearing)
        arr: list[Any] = []
        append = arr.append
        for _ in range(tag & 0x0F):
            v, i = _unpack_value(buf, i, depth + 1)
            append(v)
        return arr, i
    if tag == _TAG_JSON:
        if len(buf) < i + 4:
            raise ProtocolError("binary frame body is truncated")
        (n,) = _U32.unpack_from(buf, i)
        i += 4
        if len(buf) < i + n:
            raise ProtocolError("binary frame body is truncated")
        try:
            return json.loads(buf[i:i + n].decode("utf-8")), i + n
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"JSON subtree in binary frame is invalid: {exc}"
            ) from exc
    if tag == _TAG_U16:
        if len(buf) < i + 2:
            raise ProtocolError("binary frame body is truncated")
        return _U16.unpack_from(buf, i)[0], i + 2
    if tag == _TAG_I64:
        if len(buf) < i + 8:
            raise ProtocolError("binary frame body is truncated")
        return _I64.unpack_from(buf, i)[0], i + 8
    if tag == _TAG_STR8:
        try:
            n = buf[i]
        except IndexError:
            raise ProtocolError("binary frame body is truncated") from None
        return _take_str(buf, i + 1, n)
    if tag == _TAG_STR16:
        if len(buf) < i + 2:
            raise ProtocolError("binary frame body is truncated")
        (n,) = _U16.unpack_from(buf, i)
        return _take_str(buf, i + 2, n)
    if tag == _TAG_STR32:
        if len(buf) < i + 4:
            raise ProtocolError("binary frame body is truncated")
        (n,) = _U32.unpack_from(buf, i)
        return _take_str(buf, i + 4, n)
    if tag == _TAG_ARR16:
        if len(buf) < i + 2:
            raise ProtocolError("binary frame body is truncated")
        (n,) = _U16.unpack_from(buf, i)
        i += 2
        arr2: list[Any] = []
        append = arr2.append
        for _ in range(n):
            v, i = _unpack_value(buf, i, depth + 1)
            append(v)
        return arr2, i
    if tag == _TAG_MAP16:
        if len(buf) < i + 2:
            raise ProtocolError("binary frame body is truncated")
        (n,) = _U16.unpack_from(buf, i)
        i += 2
        out2: dict[str, Any] = {}
        for _ in range(n):
            k, i = _unpack_value(buf, i, depth + 1)
            if type(k) is not str:
                raise ProtocolError("binary map key is not a string")
            v, i = _unpack_value(buf, i, depth + 1)
            out2[k] = v
        return out2, i
    raise ProtocolError(f"unknown binary value tag 0x{tag:02x}")


def _take_str(buf: bytes, i: int, n: int) -> tuple[str, int]:
    j = i + n
    if j > len(buf):
        raise ProtocolError("binary frame body is truncated")
    try:
        return buf[i:j].decode("utf-8"), j
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"invalid UTF-8 in binary frame: {exc}") from exc


# ---------------------------------------------------------------- codecs


class BinaryCodec:
    """The binary-v1 framing for one connection.

    One instance per connection: :meth:`encode` builds frames into a
    reused ``bytearray`` (the buffer-reuse half of the win — no fresh
    allocation ramp per frame), so an instance must not be shared across
    concurrently-encoding connections. Decoding is stateless.
    """

    name = CODEC_BINARY

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    # ------------------------------------------------------------ encode

    def encode(
        self, payload: dict[str, Any], max_frame_bytes: int | None = None
    ) -> bytes:
        """Serialize one frame (header + body); same contract as
        :func:`repro.server.protocol.encode_frame` — a body over the
        ceiling raises the typed :class:`FrameTooLargeError` before any
        byte reaches the wire."""
        limit = (
            protocol.MAX_FRAME_BYTES
            if max_frame_bytes is None
            else int(max_frame_bytes)
        )
        buf = self._buf
        del buf[:]
        buf += _HEADER_PAD
        try:
            kind, rid = self._encode_body(buf, payload)
        except _Unshaped:
            del buf[HEADER_SIZE:]
            kind, rid = self._encode_json_escape(buf, payload)
        except RecursionError:
            raise ProtocolError("payload nests too deeply to encode") from None
        body_len = len(buf) - HEADER_SIZE
        if body_len > limit:
            raise FrameTooLargeError(
                f"frame of {body_len} bytes exceeds the frame ceiling "
                f"({limit} bytes)"
            )
        _HEADER.pack_into(buf, 0, MAGIC, VERSION, kind, rid, body_len)
        return bytes(buf)

    def _encode_body(
        self, buf: bytearray, payload: dict[str, Any]
    ) -> tuple[int, int]:
        """Append the body for a shaped payload; return (kind, header id).

        Raises :class:`_Unshaped` whenever the payload strays from the
        two known frame shapes — the caller then escapes to JSON, which
        preserves the *exact* semantics the JSON codec would have had
        (including server-side validation errors for malformed frames).
        """
        if type(payload) is not dict:
            raise _Unshaped("payload is not an object")
        keys = payload.keys()
        if "op" in keys:
            if not keys <= _REQ_KEYS or "id" not in keys:
                raise _Unshaped("not a request shape")
            rid = payload["id"]
            if type(rid) is not int or not _INT64_MIN <= rid <= _INT64_MAX:
                raise _Unshaped("request id does not fit the header")
            enc = _OP_ENC.get(payload["op"])
            if enc is None:
                raise _Unshaped("op has no binary op-code")
            code, layout, layout_set = enc
            params = payload.get("params", {})
            if type(params) is not dict or not params.keys() <= layout_set:
                raise _Unshaped("params outside the op's layout")
            mask = 0
            buf.append(0)  # presence bitmask, patched below
            mask_at = len(buf) - 1
            # Scalars inline, as in the map-layout value loop.
            for bit, name in enumerate(layout):
                if name not in params:
                    continue
                mask |= 1 << bit
                item = params[name]
                ti = type(item)
                if ti is str:
                    ci = _COMMON_CODES.get(item)
                    if ci is not None:
                        buf.append(_TAG_COMMON)
                        buf.append(ci)
                        continue
                    try:
                        b = item.encode("utf-8")
                    except UnicodeEncodeError:
                        raise _Unshaped(
                            "string is not UTF-8-encodable"
                        ) from None
                    ni = len(b)
                    if ni < 32:
                        buf.append(0xA0 | ni)
                        buf += b
                        continue
                elif ti is int:
                    if 0 <= item < 128:
                        buf.append(item)
                        continue
                elif item is None:
                    buf.append(_TAG_NIL)
                    continue
                elif ti is bool:
                    buf.append(_TAG_TRUE if item else _TAG_FALSE)
                    continue
                elif ti is list:
                    n2 = len(item)
                    if 0 < n2 <= _MAX_STRVEC:
                        try:
                            joined = _SEP.join(item)
                            blob = joined.encode("utf-8")
                        except (TypeError, UnicodeEncodeError):
                            joined = None
                        if (
                            joined is not None
                            and joined.count(_SEP) == n2 - 1
                        ):
                            buf.append(_TAG_STRVEC)
                            buf.append(n2)
                            buf += _U32.pack(len(blob))
                            buf += blob
                            continue
                _pack_value(buf, item)
            buf[mask_at] = mask
            return code, rid
        if "ok" in keys:
            if not keys <= _RESP_KEYS or "id" not in keys:
                raise _Unshaped("not a response shape")
            rid = payload["id"]
            ok = payload["ok"]
            if type(rid) is not int or not _INT64_MIN <= rid <= _INT64_MAX:
                raise _Unshaped("response id does not fit the header")
            if type(ok) is not bool:
                raise _Unshaped("response ok is not a bool")
            if ok:
                if "error" in keys:
                    raise _Unshaped("ok response carries an error")
                result = payload.get("result")
                # Row-matrix results (select/fetch pages) ride the JSON
                # escape whole-frame: one C json pass over the dominant
                # bytes beats compact-packing around an embedded JSON
                # subtree. One cheap type scan decides.
                tr = type(result)
                if tr is dict:
                    for x in result.values():
                        if type(x) is list and x and type(x[0]) is list:
                            raise _Unshaped("result carries a row matrix")
                elif tr is list and result and type(result[0]) is list:
                    raise _Unshaped("result is a row matrix")
                _pack_value(buf, result)
                return KIND_RESPONSE_OK, rid
            error = payload.get("error")
            if (
                "result" in keys
                or type(error) is not dict
                or error.keys() != _ERR_KEYS
                or type(error["type"]) is not str
                or type(error["message"]) is not str
            ):
                raise _Unshaped("malformed error response")
            _pack_value(buf, error["type"])
            _pack_value(buf, error["message"])
            return KIND_RESPONSE_ERR, rid
        raise _Unshaped("neither request nor response shape")

    def _encode_json_escape(
        self, buf: bytearray, payload: dict[str, Any]
    ) -> tuple[int, int]:
        """The whole-frame escape hatch: body = the JSON codec's body."""
        buf += _json_bytes(payload)
        kind = (
            KIND_JSON_RESPONSE
            if isinstance(payload, dict) and "ok" in payload
            else KIND_JSON_REQUEST
        )
        return kind, 0

    # ------------------------------------------------------------ decode

    def decode_frame(
        self, kind: int, request_id: int, body: bytes
    ) -> dict[str, Any]:
        """Rebuild the payload dict a JSON peer would have sent."""
        if kind in (KIND_JSON_REQUEST, KIND_JSON_RESPONSE):
            return protocol._parse_body(body)
        if kind == KIND_RESPONSE_OK:
            result, end = _unpack_value(body, 0)
            if end != len(body):
                raise ProtocolError(
                    f"binary frame has {len(body) - end} trailing bytes"
                )
            return {"id": request_id, "ok": True, "result": result}
        if kind == KIND_RESPONSE_ERR:
            err_type, i = _unpack_value(body, 0)
            message, end = _unpack_value(body, i)
            self._expect_consumed(end, body)
            if type(err_type) is not str or type(message) is not str:
                raise ProtocolError("malformed binary error response")
            return {
                "id": request_id, "ok": False,
                "error": {"type": err_type, "message": message},
            }
        if kind < len(OP_TABLE):
            op = OP_TABLE[kind]
            if not body:
                raise ProtocolError("binary request frame has no bitmask")
            mask = body[0]
            layout = PARAM_LAYOUTS[op]
            if mask >> len(layout):
                raise ProtocolError(
                    f"presence bitmask 0x{mask:02x} exceeds {op!r}'s layout"
                )
            params: dict[str, Any] = {}
            i = 1
            end_of = len(body)
            # The same inline scalar chain as the map-layout decoder:
            # request params are mostly small ints, flags and short names.
            for bit, name in enumerate(layout):
                if not mask & (1 << bit):
                    continue
                if i >= end_of:
                    raise ProtocolError("binary frame body is truncated")
                t2 = body[i]
                if t2 < 0x80:
                    params[name] = t2
                    i += 1
                    continue
                if 0xA0 <= t2 < 0xC0:  # fixstr
                    j = i + 1 + (t2 & 0x1F)
                    if j > end_of:
                        raise ProtocolError("binary frame body is truncated")
                    try:
                        params[name] = body[i + 1:j].decode("utf-8")
                    except UnicodeDecodeError as exc:
                        raise ProtocolError(
                            f"invalid UTF-8 in binary frame: {exc}"
                        ) from exc
                    i = j
                    continue
                if t2 == _TAG_COMMON and i + 1 < end_of:
                    idx = body[i + 1]
                    if idx >= len(COMMON_STRINGS):
                        raise ProtocolError(
                            f"unknown interned-string index {idx}"
                        )
                    params[name] = COMMON_STRINGS[idx]
                    i += 2
                    continue
                if t2 == _TAG_NIL:
                    params[name] = None
                    i += 1
                    continue
                if t2 == _TAG_TRUE:
                    params[name] = True
                    i += 1
                    continue
                if t2 == _TAG_FALSE:
                    params[name] = False
                    i += 1
                    continue
                if t2 == _TAG_U16:
                    if i + 3 > end_of:
                        raise ProtocolError("binary frame body is truncated")
                    params[name] = _U16.unpack_from(body, i + 1)[0]
                    i += 3
                    continue
                if t2 == _TAG_STRVEC:  # value rows / belief paths
                    if i + 6 > end_of:
                        raise ProtocolError("binary frame body is truncated")
                    nv = body[i + 1]
                    if not 0 < nv <= _MAX_STRVEC:
                        raise ProtocolError(
                            f"string-vector count {nv} is out of range"
                        )
                    (blen,) = _U32.unpack_from(body, i + 2)
                    j = i + 6 + blen
                    if j > end_of:
                        raise ProtocolError("binary frame body is truncated")
                    try:
                        cells = body[i + 6:j].decode("utf-8").split(_SEP)
                    except UnicodeDecodeError as exc:
                        raise ProtocolError(
                            f"invalid UTF-8 in binary frame: {exc}"
                        ) from exc
                    if len(cells) != nv:
                        raise ProtocolError(
                            f"string-vector blob holds {len(cells)} cells, "
                            f"header announced {nv}"
                        )
                    params[name] = cells
                    i = j
                    continue
                if t2 == _TAG_STR8:  # sql text
                    if i + 2 > end_of:
                        raise ProtocolError("binary frame body is truncated")
                    j = i + 2 + body[i + 1]
                    if j > end_of:
                        raise ProtocolError("binary frame body is truncated")
                    try:
                        params[name] = body[i + 2:j].decode("utf-8")
                    except UnicodeDecodeError as exc:
                        raise ProtocolError(
                            f"invalid UTF-8 in binary frame: {exc}"
                        ) from exc
                    i = j
                    continue
                params[name], i = _unpack_value(body, i)
            if i != end_of:
                raise ProtocolError(
                    f"binary frame has {end_of - i} trailing bytes"
                )
            return {"id": request_id, "op": op, "params": params}
        raise ProtocolError(f"unknown binary frame kind 0x{kind:02x}")

    def decode_payload(
        self, frame: bytes, max_frame_bytes: int | None = None
    ) -> dict[str, Any]:
        """Decode one complete in-memory frame (header + body).

        The off-socket counterpart of :meth:`read` — same checks, same
        result — for callers that already hold the whole frame (the wire
        profiler, the round-trip tests).
        """
        try:
            magic, version, kind, rid, length = _HEADER.unpack(
                frame[:HEADER_SIZE]
            )
        except struct.error:
            raise ProtocolError(
                "binary frame is shorter than its 16-byte header"
            ) from None
        if magic != MAGIC:
            raise ProtocolError(
                f"bad binary frame magic {magic!r} (stream desynchronized)"
            )
        if version != VERSION:
            raise ProtocolError(f"unsupported binary protocol version {version}")
        limit = (
            protocol.MAX_FRAME_BYTES
            if max_frame_bytes is None
            else int(max_frame_bytes)
        )
        if length > limit:
            raise ProtocolError(
                f"announced frame of {length} bytes exceeds the frame "
                f"ceiling ({limit} bytes)"
            )
        body = frame[HEADER_SIZE:]
        if len(body) != length:
            raise ProtocolError(
                f"frame body is {len(body)} bytes, header announced {length}"
            )
        return self.decode_frame(kind, rid, body)

    @staticmethod
    def _expect_consumed(end: int, body: bytes) -> None:
        if end != len(body):
            raise ProtocolError(
                f"binary frame has {len(body) - end} trailing bytes"
            )

    @staticmethod
    def _check_header(
        header: bytes, limit: int
    ) -> tuple[int, int, int]:
        magic, version, kind, rid, length = _HEADER.unpack(header)
        if magic != MAGIC:
            raise ProtocolError(
                f"bad binary frame magic {magic!r} (stream desynchronized)"
            )
        if version != VERSION:
            raise ProtocolError(f"unsupported binary protocol version {version}")
        if length > limit:
            raise ProtocolError(
                f"announced frame of {length} bytes exceeds the frame "
                f"ceiling ({limit} bytes)"
            )
        return kind, rid, length

    # --------------------------------------------------------- socket I/O

    def read(
        self, sock: socket.socket, max_frame_bytes: int | None = None
    ) -> dict[str, Any] | None:
        """Read one binary frame; None when the peer closed cleanly."""
        limit = protocol._ceiling(max_frame_bytes)
        header = protocol._read_exact(sock, HEADER_SIZE)
        if header is None:
            return None
        kind, rid, length = self._check_header(header, limit)
        body = protocol._read_exact(sock, length) if length else b""
        if body is None:
            raise ProtocolError("connection closed between header and body")
        return self.decode_frame(kind, rid, body)

    def write(
        self, sock: socket.socket, payload: dict[str, Any],
        max_frame_bytes: int | None = None,
    ) -> None:
        sock.sendall(self.encode(payload, max_frame_bytes))

    # -------------------------------------------------------- asyncio I/O

    async def read_async(
        self, reader: asyncio.StreamReader,
        max_frame_bytes: int | None = None,
    ) -> dict[str, Any] | None:
        limit = protocol._ceiling(max_frame_bytes)
        try:
            header = await reader.readexactly(HEADER_SIZE)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({len(exc.partial)}/"
                f"{HEADER_SIZE} bytes of binary header)"
            ) from exc
        kind, rid, length = self._check_header(header, limit)
        try:
            body = await reader.readexactly(length) if length else b""
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError(
                "connection closed between header and body"
            ) from exc
        return self.decode_frame(kind, rid, body)

    async def write_async(
        self, writer: asyncio.StreamWriter, payload: dict[str, Any],
        max_frame_bytes: int | None = None,
    ) -> None:
        writer.write(self.encode(payload, max_frame_bytes))
        await writer.drain()


class JsonCodec:
    """The length-prefixed JSON framing behind the same codec interface.

    Stateless — one module-level instance (:data:`JSON_CODEC`) serves
    every connection.
    """

    name = CODEC_JSON

    __slots__ = ()

    @staticmethod
    def encode(
        payload: dict[str, Any], max_frame_bytes: int | None = None
    ) -> bytes:
        return protocol.encode_frame(payload, max_frame_bytes)

    @staticmethod
    def decode_payload(
        frame: bytes, max_frame_bytes: int | None = None
    ) -> dict[str, Any]:
        """Decode one complete in-memory frame (4-byte prefix + body)."""
        return protocol.decode_frame(frame[4:])

    @staticmethod
    def read(
        sock: socket.socket, max_frame_bytes: int | None = None
    ) -> dict[str, Any] | None:
        return protocol.read_frame(sock, max_frame_bytes)

    @staticmethod
    def write(
        sock: socket.socket, payload: dict[str, Any],
        max_frame_bytes: int | None = None,
    ) -> None:
        protocol.write_frame(sock, payload, max_frame_bytes)

    @staticmethod
    async def read_async(
        reader: asyncio.StreamReader, max_frame_bytes: int | None = None
    ) -> dict[str, Any] | None:
        return await protocol.read_frame_async(reader, max_frame_bytes)

    @staticmethod
    async def write_async(
        writer: asyncio.StreamWriter, payload: dict[str, Any],
        max_frame_bytes: int | None = None,
    ) -> None:
        await protocol.write_frame_async(writer, payload, max_frame_bytes)


JSON_CODEC = JsonCodec()


def codec_for(name: str) -> Any:
    """A fresh codec instance for a negotiated codec name."""
    if name == CODEC_BINARY:
        return BinaryCodec()
    if name == CODEC_JSON:
        return JSON_CODEC
    raise ProtocolError(f"unknown wire codec {name!r}")


# ----------------------------------------------------------- negotiation


def check_wire_mode(wire: str) -> str:
    if wire not in WIRE_MODES:
        raise ProtocolError(
            f"wire mode must be one of {WIRE_MODES}, got {wire!r}"
        )
    return wire


def server_codecs(wire: str) -> tuple[str, ...]:
    """What a server in the given mode advertises (JSON is always the
    floor — even ``binary`` mode keeps serving never-negotiating JSON
    clients; the mode only shapes the hello answer)."""
    if wire == "json":
        return (CODEC_JSON,)
    return (CODEC_BINARY, CODEC_JSON)


def client_offer(wire: str) -> list[str]:
    """The codec list a client sends in its hello, preference order."""
    if wire == "json":
        return [CODEC_JSON]
    return [CODEC_BINARY, CODEC_JSON]


def choose_codec(offered: Any, supported: tuple[str, ...]) -> str:
    """The server's pick: the client's first offer the server supports.

    Anything unrecognized falls through to JSON — negotiation can only
    ever *upgrade* from the floor, never strand a peer.
    """
    if isinstance(offered, (list, tuple)):
        for name in offered:
            if name in supported:
                return str(name)
    return CODEC_JSON


def hello_result(wire: str, offered: Any) -> dict[str, Any]:
    """The result payload of a successful ``hello`` response."""
    supported = server_codecs(wire)
    return {
        "codecs": list(supported),
        "codec": choose_codec(offered, supported),
        "version": VERSION,
    }

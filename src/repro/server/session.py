"""Per-connection session state.

Each connection to a :class:`~repro.server.server.BeliefServer` carries a
:class:`ClientSession`: the authenticated user (if any) and a *default belief
path*. After ``login``, the default path is ``(uid,)`` — the user's own belief
world — so a plain ``insert into Sightings ...`` from that connection is
implicitly annotated as that user's belief, matching the paper's model in
which "each user sees their own belief world". An explicit ``BELIEF ...``
prefix always wins over the default.

The session only *rewrites* statements; all enforcement (path validity,
consistency, Alg. 4 accept/reject) stays in the store.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.beliefsql.ast import (
    BeliefSpec,
    DeleteStatement,
    InsertStatement,
    Literal,
    Statement,
    UpdateStatement,
)
from repro.core.paths import User
from repro.errors import BeliefDBError


class ClientSession:
    """Who is on the other end of one connection, and their default world."""

    def __init__(self, peer: str = "?") -> None:
        self.peer = peer
        self.user: User | None = None
        self.user_name: str | None = None
        self.default_path: tuple[User, ...] = ()

    # ------------------------------------------------------------ lifecycle

    def login(self, uid: User, name: str) -> None:
        """Authenticate; the default path becomes the user's own world."""
        self.user = uid
        self.user_name = name
        self.default_path = (uid,)

    def logout(self) -> None:
        self.user = None
        self.user_name = None
        self.default_path = ()

    def set_path(self, path: Sequence[User]) -> None:
        """Override the default belief path (``()`` = plain content)."""
        self.default_path = tuple(path)

    # ------------------------------------------------------------ rewriting

    def effective_path(self, path: Sequence[Any] | None) -> tuple[Any, ...]:
        """Resolve a programmatic path argument: None means "my world"."""
        if path is None:
            return self.default_path
        return tuple(path)

    def rewrite(self, statement: Statement) -> Statement:
        """Prepend the default path to DML statements with no BELIEF prefix.

        Selects are never rewritten: reading plain content is always allowed,
        and the textual form stays the single source of truth for what a
        query means regardless of who runs it.
        """
        if not self.default_path:
            return statement
        if not isinstance(
            statement, (InsertStatement, DeleteStatement, UpdateStatement)
        ):
            return statement
        if statement.belief.path:
            return statement
        spec = BeliefSpec(
            path=tuple(Literal(uid) for uid in self.default_path),
            negated=statement.belief.negated,
        )
        return dataclasses.replace(statement, belief=spec)

    # ---------------------------------------------------------------- views

    def describe(self) -> dict[str, Any]:
        return {
            "peer": self.peer,
            "user": self.user,
            "user_name": self.user_name,
            "default_path": list(self.default_path),
        }

    def require_user(self) -> User:
        if self.user is None:
            raise BeliefDBError("no user logged in on this session")
        return self.user

    def __repr__(self) -> str:
        who = self.user_name if self.user is not None else "<anonymous>"
        return f"<ClientSession {who} @ {self.peer} path={self.default_path!r}>"

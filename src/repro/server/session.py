"""Per-connection session state.

Each connection to a :class:`~repro.server.server.BeliefServer` carries a
:class:`ClientSession`: the authenticated user (if any) and a *default belief
path*. After ``login``, the default path is ``(uid,)`` — the user's own belief
world — so a plain ``insert into Sightings ...`` from that connection is
implicitly annotated as that user's belief, matching the paper's model in
which "each user sees their own belief world". An explicit ``BELIEF ...``
prefix always wins over the default.

The session only *rewrites* statements; all enforcement (path validity,
consistency, Alg. 4 accept/reject) stays in the store.

Sessions also hold the connection's server-side *prepared statements*
(``prepare`` op) and open *result cursors* (rows of a large select awaiting
``fetch`` paging). Both registries are bounded — statements evict
least-recently-*used*, cursors oldest-first — so a client hoarding handles
cannot grow server memory. Under the threaded server they are only ever
touched by the connection's own handler thread; the pipelined async server
executes one connection's in-flight requests concurrently in a thread pool,
so every registry/state mutation here takes a small internal lock.

Finally, the session owns the connection's **open transaction** (``begin``
/ ``commit`` / ``rollback`` ops): a :class:`~repro.bdms.transaction
.Transaction` write buffer that in-transaction DML stages into. Both
server cores share this state identically — the per-session transaction is
what makes ``commit`` atomic from every other session's point of view. An
open transaction dies (is discarded, never applied) with its connection.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Any, Sequence

from repro.beliefsql.ast import (
    BeliefSpec,
    DeleteStatement,
    InsertStatement,
    Literal,
    Statement,
    UpdateStatement,
)
from repro.bdms.transaction import Transaction
from repro.core.paths import User
from repro.errors import BeliefDBError, TransactionError


#: Bounds on per-connection handle registries (oldest evicted beyond these).
MAX_STATEMENTS = 256
MAX_CURSORS = 32


class ClientSession:
    """Who is on the other end of one connection, and their default world."""

    def __init__(self, peer: str = "?") -> None:
        self.peer = peer
        self.user: User | None = None
        self.user_name: str | None = None
        self.default_path: tuple[User, ...] = ()
        # Guards the registries and session identity against concurrent
        # pipelined requests (the async server dispatches one connection's
        # in-flight requests across executor threads).
        self._mutex = threading.RLock()
        self._statements: OrderedDict[int, Any] = OrderedDict()
        self._statement_seq = 0
        #: cursor id -> (row list, offset of the next unsent row). The list
        #: is never copied; paging advances the offset (O(page) per fetch).
        self._cursors: OrderedDict[int, tuple[list, int]] = OrderedDict()
        self._cursor_seq = 0
        #: The open transaction (None outside begin..commit/rollback).
        self._txn: Transaction | None = None

    # ------------------------------------------------------------ lifecycle

    def login(self, uid: User, name: str) -> None:
        """Authenticate; the default path becomes the user's own world."""
        with self._mutex:
            self.user = uid
            self.user_name = name
            self.default_path = (uid,)

    def logout(self) -> None:
        with self._mutex:
            self.user = None
            self.user_name = None
            self.default_path = ()

    def set_path(self, path: Sequence[User]) -> None:
        """Override the default belief path (``()`` = plain content)."""
        with self._mutex:
            self.default_path = tuple(path)

    # ------------------------------------------------------------ rewriting

    def effective_path(self, path: Sequence[Any] | None) -> tuple[Any, ...]:
        """Resolve a programmatic path argument: None means "my world"."""
        if path is None:
            return self.default_path
        return tuple(path)

    def rewrite(self, statement: Statement) -> Statement:
        """Prepend the default path to DML statements with no BELIEF prefix.

        Selects are never rewritten: reading plain content is always allowed,
        and the textual form stays the single source of truth for what a
        query means regardless of who runs it.
        """
        if not self.default_path:
            return statement
        if not isinstance(
            statement, (InsertStatement, DeleteStatement, UpdateStatement)
        ):
            return statement
        if statement.belief.path:
            return statement
        spec = BeliefSpec(
            path=tuple(Literal(uid) for uid in self.default_path),
            negated=statement.belief.negated,
        )
        return dataclasses.replace(statement, belief=spec)

    # ----------------------------------------------------------- transactions

    @property
    def in_transaction(self) -> bool:
        with self._mutex:
            return self._txn is not None

    def begin_transaction(self, txn: Transaction) -> None:
        """Adopt a fresh write buffer; one open transaction per session."""
        with self._mutex:
            if self._txn is not None:
                raise TransactionError(
                    "a transaction is already open on this session"
                )
            self._txn = txn

    def transaction(self) -> Transaction:
        """The open transaction (for staging); raises when none is open."""
        with self._mutex:
            if self._txn is None:
                raise TransactionError("no transaction is open")
            return self._txn

    def take_transaction(self) -> Transaction:
        """Detach the open transaction for commit; the session forgets it
        whatever the commit's outcome."""
        with self._mutex:
            if self._txn is None:
                raise TransactionError(
                    "no transaction is open — nothing to commit"
                )
            txn, self._txn = self._txn, None
            return txn

    def rollback_transaction(self) -> int:
        """Discard the open transaction; staged statements dropped."""
        with self._mutex:
            if self._txn is None:
                raise TransactionError(
                    "no transaction is open — nothing to roll back"
                )
            txn, self._txn = self._txn, None
        return txn.discard()

    def abandon_transaction(self) -> bool:
        """Discard an open transaction without error (connection teardown).

        Both server cores call this when a connection dies, so a
        transaction left open by a vanished client still reaches a
        terminal state and the begun/committed/rolled-back ledger in
        ``snapshot_stats`` reconciles.
        """
        with self._mutex:
            txn, self._txn = self._txn, None
        if txn is not None and txn.open:
            txn.discard()
            return True
        return False

    # --------------------------------------------------- prepared statements

    def register_statement(self, prepared: Any) -> int:
        """Store a prepared statement; returns its per-connection handle."""
        with self._mutex:
            self._statement_seq += 1
            self._statements[self._statement_seq] = prepared
            while len(self._statements) > MAX_STATEMENTS:
                self._statements.popitem(last=False)
            return self._statement_seq

    def statement(self, stmt_id: Any) -> Any:
        with self._mutex:
            prepared = self._statements.get(stmt_id)
            if prepared is None:
                raise BeliefDBError(f"unknown prepared statement {stmt_id!r}")
            # Refresh recency so the capacity bound evicts idle handles, not
            # the ones a long-lived connection executes constantly.
            self._statements.move_to_end(stmt_id)
            return prepared

    def close_statement(self, stmt_id: Any) -> bool:
        with self._mutex:
            return self._statements.pop(stmt_id, None) is not None

    # ----------------------------------------------------------- row cursors

    def register_cursor(self, rows: list) -> int:
        """Park the unsent tail of a large result for ``fetch`` paging."""
        with self._mutex:
            self._cursor_seq += 1
            self._cursors[self._cursor_seq] = (rows, 0)
            while len(self._cursors) > MAX_CURSORS:
                self._cursors.popitem(last=False)
            return self._cursor_seq

    def fetch_rows(self, cursor_id: Any, count: int) -> tuple[list, bool]:
        """Next ``count`` rows and whether more remain (auto-closes at end)."""
        with self._mutex:
            entry = self._cursors.get(cursor_id)
            if entry is None:
                raise BeliefDBError(f"unknown cursor {cursor_id!r}")
            rows, offset = entry
            end = offset + max(0, count)
            batch = rows[offset:end]
            if end < len(rows):
                self._cursors[cursor_id] = (rows, end)
                return batch, True
            del self._cursors[cursor_id]
            return batch, False

    def close_cursor(self, cursor_id: Any) -> bool:
        with self._mutex:
            return self._cursors.pop(cursor_id, None) is not None

    # ---------------------------------------------------------------- views

    def describe(self) -> dict[str, Any]:
        with self._mutex:
            txn = self._txn
            return {
                "peer": self.peer,
                "user": self.user,
                "user_name": self.user_name,
                "default_path": list(self.default_path),
                "statements": len(self._statements),
                "cursors": len(self._cursors),
                "transaction": (
                    None if txn is None else {
                        "statements": txn.statement_count,
                        "rows": txn.row_count,
                    }
                ),
            }

    def require_user(self) -> User:
        if self.user is None:
            raise BeliefDBError("no user logged in on this session")
        return self.user

    def __repr__(self) -> str:
        who = self.user_name if self.user is not None else "<anonymous>"
        return f"<ClientSession {who} @ {self.peer} path={self.default_path!r}>"

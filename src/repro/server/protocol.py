"""The belief-server wire protocol.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON. The format is deliberately boring — any
language with sockets and a JSON parser can speak it.

Two frame shapes travel the wire:

* request  — ``{"id": <int>, "op": <str>, "params": {...}}``
* response — ``{"id": <int>, "ok": true,  "result": <json>}`` or
  ``{"id": <int>, "ok": false, "error": {"type": <str>, "message": <str>}}``

The protocol **fails closed**: oversized lengths, truncated frames, invalid
UTF-8/JSON, non-object payloads, and missing or mistyped fields all raise
:class:`ProtocolError`. A server drops the connection on a protocol error (a
malformed peer cannot be re-synchronized mid-stream); well-formed requests
with *semantic* problems (unknown op, bad arguments) get an error *response*
and the connection survives.

Pipelining contract
-------------------
Every request carries a client-chosen ``id`` and the matching response echoes
it back; that id — not arrival order — is the unit of correlation. A client
may therefore keep any number of requests in flight on one connection
without waiting for responses. Two server implementations honor the same
frames with different ordering guarantees:

* the threaded :class:`~repro.server.server.BeliefServer` executes one
  request per connection at a time, so responses happen to arrive in
  request order;
* the pipelined :class:`~repro.server.async_server.AsyncBeliefServer`
  executes in-flight requests **concurrently** (bounded by its
  ``max_inflight``) and writes each response as it completes, so responses
  may arrive **out of order**.

Clients must correlate strictly by id and must not pipeline a request that
depends on the *effect* of an earlier one (``login`` then a default-path
``insert``, ``prepare`` then ``execute_prepared`` on the new handle) without
awaiting the earlier response first. Transactions sharpen this rule: every
request between ``begin`` and ``commit``/``rollback`` — and those three ops
themselves — depends on the session's transaction state, so **in-transaction
requests must not be pipelined at all**; await each response before sending
the next. A response id that was never issued — or one already consumed —
desynchronizes the stream and fails closed. See ``docs/wire-protocol.md``
for the full contract.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BeliefDBError, FrameTooLargeError

#: Default ceiling on a frame's payload size. Large enough for any realistic
#: result set here, small enough that a garbage length prefix cannot make the
#: reader allocate gigabytes. Every frame function below accepts a
#: ``max_frame_bytes`` override (``repro serve --max-frame-bytes`` plumbs it
#: end to end); ``None`` means this default.
MAX_FRAME_BYTES = 1 << 20

#: Oversize handling is asymmetric by design. *Outgoing* frames that exceed
#: the ceiling raise the typed :class:`~repro.errors.FrameTooLargeError`
#: before a single byte reaches the wire — a server substitutes a small
#: structured error response (the connection survives), and a client surfaces
#: the error locally (the connection, and any pipelined requests on it, are
#: untouched). *Incoming* announced lengths over the ceiling still fail
#: closed with :class:`ProtocolError` and no allocation: trusting a garbage
#: length prefix enough to drain it would let one bad frame park the reader
#: on bytes that may never arrive.

#: Every operation the server understands. The protocol layer validates that
#: ``op`` is *a* string; membership is enforced by the server so that protocol
#: and dispatch table cannot drift apart silently.
OPS = frozenset({
    # session
    "ping", "login", "logout", "whoami", "set_path",
    # user management
    "add_user", "users",
    # statements
    "insert", "delete", "execute",
    # prepared statements, batched execution, and result paging
    "prepare", "execute_prepared", "execute_batch", "close_statement",
    "fetch", "close_cursor",
    # transactions (per-session; DML between begin and commit is staged)
    "begin", "commit", "rollback",
    # queries
    "query", "believes", "world", "worlds",
    # introspection
    "stats", "metrics", "kripke", "describe",
    # belief lifecycle (curation writes) and the append-only audit reads
    "lifecycle", "audit",
    # sharding (answered by the router; a plain worker reports unknown op)
    "shard_status",
})

_LENGTH = struct.Struct(">I")


class ProtocolError(BeliefDBError):
    """The byte stream or frame violates the wire protocol (fail closed)."""


# --------------------------------------------------------------------- frames


@dataclass(frozen=True)
class Request:
    """One client operation: ``op`` with keyword ``params``."""

    id: int
    op: str
    params: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> dict[str, Any]:
        return {"id": self.id, "op": self.op, "params": self.params}

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "Request":
        _expect_keys(payload, {"id", "op", "params"}, optional={"params"})
        rid = payload["id"]
        op = payload["op"]
        params = payload.get("params", {})
        if not isinstance(rid, int) or isinstance(rid, bool):
            raise ProtocolError(f"request id must be an int, got {rid!r}")
        if not isinstance(op, str):
            raise ProtocolError(f"request op must be a string, got {op!r}")
        if not isinstance(params, dict):
            raise ProtocolError(f"request params must be an object, got {params!r}")
        return cls(id=rid, op=op, params=params)


@dataclass(frozen=True)
class Response:
    """The server's answer to one request."""

    id: int
    ok: bool
    result: Any = None
    error: dict[str, str] | None = None

    def to_wire(self) -> dict[str, Any]:
        if self.ok:
            return {"id": self.id, "ok": True, "result": self.result}
        return {"id": self.id, "ok": False, "error": self.error}

    @classmethod
    def from_wire(cls, payload: dict[str, Any]) -> "Response":
        _expect_keys(
            payload, {"id", "ok", "result", "error"},
            optional={"result", "error"},
        )
        rid = payload["id"]
        ok = payload["ok"]
        if not isinstance(rid, int) or isinstance(rid, bool):
            raise ProtocolError(f"response id must be an int, got {rid!r}")
        if not isinstance(ok, bool):
            raise ProtocolError(f"response ok must be a bool, got {ok!r}")
        if ok:
            return cls(id=rid, ok=True, result=payload.get("result"))
        error = payload.get("error")
        if (
            not isinstance(error, dict)
            or not isinstance(error.get("type"), str)
            or not isinstance(error.get("message"), str)
        ):
            raise ProtocolError(f"malformed error payload: {error!r}")
        return cls(id=rid, ok=False, error={"type": error["type"],
                                            "message": error["message"]})

    @classmethod
    def success(cls, request_id: int, result: Any) -> "Response":
        return cls(id=request_id, ok=True, result=result)

    @classmethod
    def failure(cls, request_id: int, exc: BaseException) -> "Response":
        return cls(
            id=request_id,
            ok=False,
            error={"type": type(exc).__name__, "message": str(exc)},
        )


def _expect_keys(
    payload: dict[str, Any], allowed: set[str], optional: set[str] = frozenset()
) -> None:
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame payload must be an object, got {payload!r}")
    unknown = set(payload) - allowed
    if unknown:
        raise ProtocolError(f"unknown frame fields {sorted(unknown)}")
    missing = (allowed - optional) - set(payload)
    if missing:
        raise ProtocolError(f"missing frame fields {sorted(missing)}")


# ------------------------------------------------------------------- encoding


def _ceiling(max_frame_bytes: int | None) -> int:
    return MAX_FRAME_BYTES if max_frame_bytes is None else int(max_frame_bytes)


def encode_frame(
    payload: dict[str, Any], max_frame_bytes: int | None = None
) -> bytes:
    """Serialize one frame: length prefix + JSON body.

    Raises the typed :class:`~repro.errors.FrameTooLargeError` when the
    encoded body exceeds the ceiling, so callers can substitute a structured
    error response instead of tearing the connection down.
    """
    limit = _ceiling(max_frame_bytes)
    try:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"payload is not JSON-serializable: {exc}") from exc
    if len(body) > limit:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the frame ceiling "
            f"({limit} bytes)"
        )
    return _LENGTH.pack(len(body)) + body


def _parse_body(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def decode_frame(
    body: bytes, max_frame_bytes: int | None = None
) -> dict[str, Any]:
    """Parse a frame body (the bytes *after* the length prefix); fail closed."""
    limit = _ceiling(max_frame_bytes)
    if len(body) > limit:
        raise FrameTooLargeError(
            f"frame of {len(body)} bytes exceeds the frame ceiling "
            f"({limit} bytes)"
        )
    return _parse_body(body)




# ---------------------------------------------------------------- socket I/O


def _read_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise ProtocolError(
                    f"connection closed mid-frame ({n - remaining}/{n} bytes)"
                )
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame_bytes: int | None = None
) -> dict[str, Any] | None:
    """Read one frame from a socket; None when the peer closed cleanly."""
    limit = _ceiling(max_frame_bytes)
    prefix = _read_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > limit:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the frame ceiling "
            f"({limit} bytes)"
        )
    body = _read_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between length prefix and body")
    return _parse_body(body)


def write_frame(
    sock: socket.socket, payload: dict[str, Any],
    max_frame_bytes: int | None = None,
) -> None:
    """Encode and send one frame."""
    sock.sendall(encode_frame(payload, max_frame_bytes))


# --------------------------------------------------------------- asyncio I/O


async def read_frame_async(
    reader: asyncio.StreamReader, max_frame_bytes: int | None = None
) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; None on clean EOF.

    Same fail-closed semantics as :func:`read_frame`: EOF is only clean at a
    frame boundary; mid-frame truncation, oversized lengths, and malformed
    bodies raise :class:`ProtocolError`.
    """
    limit = _ceiling(max_frame_bytes)
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/"
            f"{_LENGTH.size} bytes of length prefix)"
        ) from exc
    (length,) = _LENGTH.unpack(prefix)
    if length > limit:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the frame ceiling "
            f"({limit} bytes)"
        )
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "connection closed between length prefix and body"
        ) from exc
    return _parse_body(body)


async def write_frame_async(
    writer: asyncio.StreamWriter, payload: dict[str, Any],
    max_frame_bytes: int | None = None,
) -> None:
    """Encode and send one frame on an asyncio stream (drains the buffer)."""
    writer.write(encode_frame(payload, max_frame_bytes))
    await writer.drain()

"""A threaded socket server multiplexing many clients over one shared BDMS.

Concurrency model
-----------------
:class:`~repro.bdms.bdms.BeliefDBMS` is not internally synchronized, so the
server guards it with a writer-preference :class:`ReadWriteLock`:

* *reads* (``select``, ``query``, ``believes``, ``world``, ``stats``, ...)
  share the lock — many clients can query concurrently;
* *writes* (``insert``, ``delete``, ``update``, ``add_user``) are exclusive,
  which makes every update atomic and the whole history linearizable: the
  order in which writers acquire the lock *is* the serial order (the op log
  records it, and tests replay it to check equivalence);
* *transaction commits* are writes: the whole staged group of a session's
  transaction applies under ONE exclusive acquisition (and one WAL fsync),
  so readers never observe a partial transaction. ``begin``/``rollback``
  and in-transaction staging only touch the per-session buffer and ride
  the read side.

One backend caveat, found by the thread-safety audit: the ``"sqlite"``
backend resyncs its mirror lazily *inside the query path*, so its reads
mutate state. The server therefore promotes reads to exclusive when the
shared BDMS runs on that backend.

Wire behavior
-------------
Each connection is served by its own daemon thread running a frame loop.
Well-formed requests always get a response — semantic failures (unknown op,
rejected update, parse error) travel back as error frames and the connection
survives. Protocol violations (garbage bytes, oversized frames) kill the
connection: after a framing error the stream cannot be trusted.
"""

from __future__ import annotations

import socket
import threading
import time
from contextlib import nullcontext
from typing import Any, Callable, Sequence

from repro.bdms.bdms import BeliefDBMS, PreparedStatement
from repro.beliefsql.ast import SelectStatement, bind_statement
from repro.beliefsql.parser import parse_beliefsql
from repro.core.paths import format_path
from repro.errors import (
    BeliefDBError,
    FrameTooLargeError,
    ServerOverloadedError,
    TransactionError,
)
from repro.obs.clock import monotonic_s
from repro.obs.trace import DEFAULT_CAPACITY, DEFAULT_THRESHOLD_MS, SlowOpLog
from repro.server import binproto, protocol
from repro.server.protocol import ProtocolError, Request, Response
from repro.server.session import ClientSession

DEFAULT_PORT = 5433

#: Rows sent in the first ``execute_prepared`` response / each ``fetch`` page
#: unless the client asks for a different ``max_rows`` / ``n``.
DEFAULT_PAGE_ROWS = 512


class ReadWriteLock:
    """A writer-preference readers-writer lock.

    Any number of readers may hold the lock together; writers are exclusive.
    Waiting writers block *new* readers, so a steady stream of queries cannot
    starve updates.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        # Per-mode wait/hold histogram children; None until bind_metrics(),
        # which keeps the unbound lock at one attribute check per acquire.
        self._wait_timers: dict[str, Any] | None = None
        self._hold_timers: dict[str, Any] | None = None

    def bind_metrics(self, registry: Any) -> None:
        """Start observing wait and hold times on ``registry``.

        Wait time is how long an acquirer queued before getting the lock
        (contention); hold time is how long it then kept it (the reason
        everyone else waited). Both are labelled ``mode="read"|"write"``.
        """
        wait = registry.histogram(
            "beliefdb_lock_wait_seconds",
            "Time spent waiting to acquire the database readers-writer lock.",
            labels=("mode",),
        )
        hold = registry.histogram(
            "beliefdb_lock_hold_seconds",
            "Time the database readers-writer lock was held per acquisition.",
            labels=("mode",),
        )
        self._wait_timers = {m: wait.labels(mode=m) for m in ("read", "write")}
        self._hold_timers = {m: hold.labels(mode=m) for m in ("read", "write")}

    def acquire_read(self) -> None:
        timers = self._wait_timers
        start = monotonic_s() if timers is not None else 0.0
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        if timers is not None:
            timers["read"].observe(monotonic_s() - start)

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if not self._readers:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        timers = self._wait_timers
        start = monotonic_s() if timers is not None else 0.0
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        if timers is not None:
            timers["write"].observe(monotonic_s() - start)

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()

    class _Guard:
        __slots__ = ("_acquire", "_release", "_timer", "_start")

        def __init__(
            self,
            acquire: Callable[[], None],
            release: Callable[[], None],
            timer: Any = None,
        ):
            self._acquire, self._release = acquire, release
            self._timer = timer
            self._start = 0.0

        def __enter__(self) -> None:
            self._acquire()
            if self._timer is not None:
                self._start = monotonic_s()

        def __exit__(self, *exc_info: object) -> None:
            if self._timer is None:
                self._release()
                return
            elapsed = monotonic_s() - self._start
            self._release()
            self._timer.observe(elapsed)

    def read(self) -> "ReadWriteLock._Guard":
        timers = self._hold_timers
        return self._Guard(
            self.acquire_read, self.release_read,
            None if timers is None else timers["read"],
        )

    def write(self) -> "ReadWriteLock._Guard":
        timers = self._hold_timers
        return self._Guard(
            self.acquire_write, self.release_write,
            None if timers is None else timers["write"],
        )


def _jsonify(value: Any) -> Any:
    """Make query/statement results JSON-serializable (tuples -> lists)."""
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) \
            else list(value)
        return [_jsonify(v) for v in items]
    return value


class BeliefServer:
    """Serve one shared :class:`BeliefDBMS` to many socket clients.

    Parameters
    ----------
    db:
        The shared database. The server takes ownership of synchronization;
        do not mutate ``db`` from other threads while the server runs.
    host / port:
        Bind address. ``port=0`` picks an ephemeral port; the bound address
        is available as :attr:`address` after :meth:`start`.
    record_ops:
        Keep an in-memory log of every accepted write in serial (lock) order,
        for linearizability checks — see :meth:`oplog` and
        :func:`replay_oplog`.
    checkpoint_interval:
        When the shared ``db`` has a durability manager attached, run a
        background thread that checkpoints (snapshot + WAL prune, under the
        exclusive writer lock) every this-many seconds — but only when new
        WAL records have accumulated. None disables the thread.
    max_sessions:
        Admission control on connections: beyond this many concurrently
        active sessions a new connection gets a structured
        ``SERVER_OVERLOADED`` error in reply to its first request and is
        closed, instead of silently piling onto the lock. None (default)
        means unlimited.
    max_inflight_requests:
        Admission control on requests: when this many requests are already
        executing server-wide, further requests are shed immediately with
        ``SERVER_OVERLOADED`` instead of queueing on the database lock —
        bounding latency under overload. ``ping`` and ``metrics`` are
        exempt so health checks and scrapes survive. None means unlimited.
    slow_op_ms / slow_op_capacity:
        Threshold and ring-buffer size of the slow-op trace log (see
        :class:`~repro.obs.trace.SlowOpLog`). ``slow_op_ms=None`` disables
        tracing; ``0`` traces every op.
    """

    #: Ops admission control never sheds: health checks and scrapes must
    #: keep answering under overload (they bypass the database lock, so
    #: admitting them costs nothing). A class attribute so the shard router
    #: can extend the set (it adds ``shard_status``).
    shed_exempt_ops: frozenset = frozenset({"ping", "metrics"})

    #: Bench/debug escape hatch: force reads back onto the readers-writer
    #: lock (the pre-MVCC discipline) instead of serving them lock-free from
    #: pinned versions. Used by the mixed-readwrite benchmark as the A/B
    #: control; never set in production paths.
    _force_locked_reads: bool = False

    def __init__(
        self,
        db: BeliefDBMS,
        host: str = "127.0.0.1",
        port: int = 0,
        record_ops: bool = False,
        checkpoint_interval: float | None = None,
        max_sessions: int | None = None,
        max_inflight_requests: int | None = None,
        slow_op_ms: float | None = DEFAULT_THRESHOLD_MS,
        slow_op_capacity: int = DEFAULT_CAPACITY,
        max_frame_bytes: int | None = None,
        wire: str = "auto",
    ) -> None:
        self.db = db
        self.host = host
        self.port = port
        self.wire = binproto.check_wire_mode(wire)
        self.max_frame_bytes = (
            protocol.MAX_FRAME_BYTES if max_frame_bytes is None
            else int(max_frame_bytes)
        )
        self.lock = ReadWriteLock()
        self.record_ops = record_ops
        self.checkpoint_interval = checkpoint_interval
        self.max_sessions = max_sessions
        self.max_inflight_requests = max_inflight_requests
        self._checkpoint_thread: threading.Thread | None = None
        self._oplog: list[dict[str, Any]] = []
        self._oplog_seq = 0
        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self._state_lock = threading.Lock()
        self._connections: dict[int, socket.socket] = {}
        self._conn_counter = 0
        self._handler_threads: dict[int, threading.Thread] = {}
        self.stats = {
            "connections_total": 0,
            "connections_active": 0,
            "ops_served": 0,
            "op_errors": 0,
            "protocol_errors": 0,
            "checkpoints": 0,
            "checkpoint_errors": 0,
            "overload_sheds": 0,
        }
        # In-flight accounting has two speeds. With an admission limit the
        # check-and-increment must be atomic across threads, so those
        # requests pay a dedicated lock (dedicated: sharing _state_lock
        # would couple its contention onto every request). Without a limit
        # — the default, and the hot path the overhead budget is measured
        # on — each dispatch thread tracks its own delta in a per-thread
        # shard (GIL-safe, no lock) and readers sum both.
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._inflight_shards: dict[int, list[int]] = {}
        self._started_at: float | None = None
        self.slow_ops = SlowOpLog(
            capacity=slow_op_capacity, threshold_ms=slow_op_ms
        )
        # Adopt the shared database's registry so statement, durability,
        # lock, and wire metrics all land in one process-wide namespace.
        self.metrics = db.metrics
        self.lock.bind_metrics(self.metrics)
        self._op_hist = self.metrics.histogram(
            "beliefdb_op_seconds",
            "Wire operation latency from dispatch start to response built.",
            labels=("op",),
        )
        self._ops_total = self.metrics.counter(
            "beliefdb_ops_total",
            "Wire operations dispatched, by op and outcome.",
            labels=("op", "status"),
        )
        self._shed_counter = self.metrics.counter(
            "beliefdb_overload_sheds_total",
            "Requests/sessions shed by admission control, by reason.",
            labels=("reason",),
        )
        self._conn_counter_metric = self.metrics.counter(
            "beliefdb_connections_total",
            "Connections ever accepted.",
        )
        self._wire_negotiations = self.metrics.counter(
            "beliefdb_wire_negotiations_total",
            "Completed hello exchanges, by the codec the server chose.",
            labels=("codec",),
        )
        self.metrics.gauge(
            "beliefdb_sessions_active",
            "Currently connected client sessions.",
        ).set_function(lambda: self.stats["connections_active"])
        self.metrics.gauge(
            "beliefdb_inflight_requests",
            "Requests currently executing (admitted, not yet answered).",
        ).set_function(self._inflight_now)
        self.metrics.gauge(
            "beliefdb_uptime_seconds",
            "Seconds since the server started serving (0 when stopped).",
        ).set_function(self._uptime)
        # Hot-path caches: label-child lookups resolved once per key, so a
        # dispatched op costs dict hits instead of labels() lock hops.
        self._op_timers: dict[str, Any] = {}
        self._op_counters: dict[tuple[str, str], Any] = {}

    # ------------------------------------------------------------- lifecycle

    def start(self) -> "BeliefServer":
        if self._listener is not None:
            raise BeliefDBError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self._listener = listener
        self.address = listener.getsockname()
        self._started_at = monotonic_s()
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="belief-server-accept", daemon=True
        )
        self._accept_thread.start()
        self._start_checkpoint_thread()
        return self

    def _start_checkpoint_thread(self) -> None:
        """Launch the background checkpoint thread when configured.

        Shared with :class:`~repro.server.async_server.AsyncBeliefServer`:
        the loop body only touches threading primitives (the RW lock and the
        stopping event), so the same thread serves both server cores.
        """
        if self.checkpoint_interval and self.db.durability is not None:
            self._checkpoint_thread = threading.Thread(
                target=self._checkpoint_loop,
                name="belief-server-checkpoint",
                daemon=True,
            )
            self._checkpoint_thread.start()

    def stop(self) -> None:
        """Stop accepting, close every connection, join handler threads."""
        if self._listener is None:
            return
        self._stopping.set()
        try:
            # Wake the accept() call: close() alone does not interrupt a
            # thread already blocked in accept on Linux.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            # Some platforms refuse shutdown on listening sockets; poke the
            # port with a throwaway connection instead.
            if self.address is not None:
                try:
                    socket.create_connection(self.address, timeout=1).close()
                except OSError:
                    pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._state_lock:
            live = list(self._connections.values())
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self._checkpoint_thread is not None:
            self._checkpoint_thread.join(timeout=5)
            self._checkpoint_thread = None
        with self._state_lock:
            live_threads = list(self._handler_threads.values())
        for thread in live_threads:
            thread.join(timeout=5)
        self._listener = None
        self._accept_thread = None
        self._handler_threads.clear()
        self._started_at = None

    def _uptime(self) -> float:
        started = self._started_at
        return monotonic_s() - started if started is not None else 0.0

    def _inflight_now(self) -> int:
        """Requests executing right now: the admission-locked count plus
        every per-thread shard (see the ctor comment on the two speeds)."""
        with self._inflight_lock:
            exact = self._inflight
        return exact + sum(
            shard[0] for shard in list(self._inflight_shards.values())
        )

    def _checkpoint_loop(self) -> None:
        """Periodically snapshot the shared database (durable servers only).

        Runs under the exclusive writer lock so the snapshot observes a
        quiescent, fully-logged state; skips quiet intervals so an idle
        server does not rewrite identical snapshots forever.
        """
        while not self._stopping.wait(self.checkpoint_interval):
            manager = self.db.durability
            if manager is None or manager.closed or manager.failed:
                # A failed-stop manager can never checkpoint again; keep
                # serving reads instead of stalling everyone under the
                # write lock every interval just to fail.
                return
            if not manager.records_since_checkpoint:
                continue
            try:
                with self.lock.write():
                    self.db.checkpoint()
                with self._state_lock:
                    self.stats["checkpoints"] += 1
            except Exception:  # noqa: BLE001 — keep serving; surface in stats
                with self._state_lock:
                    self.stats["checkpoint_errors"] += 1

    def __enter__(self) -> "BeliefServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._listener is not None

    # ----------------------------------------------------------- accept loop

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn, peer = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._state_lock:
                self._conn_counter += 1
                conn_id = self._conn_counter
                self._connections[conn_id] = conn
                self.stats["connections_total"] += 1
                self.stats["connections_active"] += 1
            self._conn_counter_metric.inc()
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn_id, conn, f"{peer[0]}:{peer[1]}"),
                name=f"belief-server-conn-{conn_id}",
                daemon=True,
            )
            with self._state_lock:
                self._handler_threads[conn_id] = thread
            thread.start()

    def _over_session_limit(self) -> bool:
        """Is this (already counted) connection beyond ``max_sessions``?"""
        if self.max_sessions is None:
            return False
        with self._state_lock:
            return self.stats["connections_active"] > self.max_sessions

    def _count_shed(self, reason: str) -> None:
        with self._state_lock:
            self.stats["overload_sheds"] += 1
        self._shed_counter.labels(reason=reason).inc()

    def _overload_error(self, reason: str) -> ServerOverloadedError:
        if reason == "sessions":
            return ServerOverloadedError(
                f"server is at its session limit ({self.max_sessions}); "
                "retry after backing off"
            )
        return ServerOverloadedError(
            f"server is at its in-flight request limit "
            f"({self.max_inflight_requests}); retry after backing off"
        )

    def _refuse_connection(self, conn: socket.socket) -> None:
        """Answer an over-limit connection's first request with
        ``SERVER_OVERLOADED``, then let the caller close it.

        Reading one request first (instead of slamming the socket shut)
        gives the client a structured, typed error to act on; a client that
        never sends simply sees EOF.
        """
        self._count_shed("sessions")
        try:
            payload = protocol.read_frame(conn, self.max_frame_bytes)
            if payload is None:
                return
            request = Request.from_wire(payload)
            protocol.write_frame(conn, Response.failure(
                request.id, self._overload_error("sessions")
            ).to_wire(), self.max_frame_bytes)
        except (ProtocolError, FrameTooLargeError, OSError):
            pass

    def _negotiate_wire(self, request: Request) -> tuple[Response, Any]:
        """Answer a ``hello`` and pick the codec for the rest of the
        connection.

        Returns the response (to be written in the *current* codec — the
        switch happens strictly after that frame) and the codec object
        both sides use from the next frame on. Unknown client offers fall
        through to JSON, so negotiation can only upgrade, never strand.
        """
        params = request.params if isinstance(request.params, dict) else {}
        result = binproto.hello_result(self.wire, params.get("codecs"))
        self._wire_negotiations.labels(codec=result["codec"]).inc()
        return (
            Response.success(request.id, result),
            binproto.codec_for(result["codec"]),
        )

    def _serve_connection(
        self, conn_id: int, conn: socket.socket, peer: str
    ) -> None:
        session = ClientSession(peer)
        # Every connection starts on the JSON floor; a hello may upgrade
        # it. The binary codec instance is per-connection (it owns a
        # reused encode buffer), created at negotiation time.
        codec = binproto.JSON_CODEC
        try:
            if self._over_session_limit():
                self._refuse_connection(conn)
                return  # the finally block closes and un-counts it
            while not self._stopping.is_set():
                try:
                    payload = codec.read(conn, self.max_frame_bytes)
                except (ProtocolError, OSError):
                    with self._state_lock:
                        self.stats["protocol_errors"] += 1
                    break  # fail closed: drop the connection
                if payload is None:
                    break  # clean EOF
                try:
                    request = Request.from_wire(payload)
                except ProtocolError:
                    with self._state_lock:
                        self.stats["protocol_errors"] += 1
                    break
                if request.op == binproto.HELLO_OP:
                    response, next_codec = self._negotiate_wire(request)
                    try:
                        codec.write(
                            conn, response.to_wire(), self.max_frame_bytes
                        )
                    except (ProtocolError, FrameTooLargeError, OSError):
                        break
                    codec = next_codec
                    continue
                response = self._dispatch(session, request)
                try:
                    codec.write(
                        conn, response.to_wire(), self.max_frame_bytes
                    )
                except FrameTooLargeError as exc:
                    # The *response* outgrew the ceiling; substitute a small
                    # typed error frame so the connection survives.
                    try:
                        codec.write(
                            conn,
                            Response.failure(request.id, exc).to_wire(),
                            self.max_frame_bytes,
                        )
                    except (ProtocolError, FrameTooLargeError, OSError):
                        break
                except (ProtocolError, OSError):
                    break
        finally:
            session.abandon_transaction()  # an open txn dies with the session
            try:
                conn.close()
            except OSError:
                pass
            with self._state_lock:
                self._connections.pop(conn_id, None)
                if not self._stopping.is_set():
                    # Self-prune so long-lived servers don't accumulate one
                    # dead Thread per connection; stop() joins the rest.
                    self._handler_threads.pop(conn_id, None)
                self.stats["connections_active"] -= 1

    # -------------------------------------------------------------- dispatch

    def _dispatch(self, session: ClientSession, request: Request) -> Response:
        """Admission control + instrumentation around the op dispatch.

        Both server cores funnel every request through here. The wrapper
        sheds over-limit requests *before* they queue on the database lock
        (bounded latency beats unbounded queueing), times the admitted ones
        on the shared monotonic clock, and feeds the per-op histogram,
        outcome counters, and the slow-op trace log.
        """
        op = request.op
        shard: list[int] | None = None
        if (
            self.max_inflight_requests is not None
            and op not in self.shed_exempt_ops
        ):
            with self._inflight_lock:
                admitted = self._inflight < self.max_inflight_requests
                if admitted:
                    self._inflight += 1
            if not admitted:
                self._count_shed("inflight")
                self._observe_op(op, "shed", None)
                return Response.failure(
                    request.id, self._overload_error("inflight")
                )
        else:
            ident = threading.get_ident()
            shard = self._inflight_shards.get(ident)
            if shard is None:
                shard = self._inflight_shards[ident] = [0]
            shard[0] += 1
        start = monotonic_s()
        try:
            response = self._dispatch_inner(session, request)
        finally:
            if shard is not None:
                shard[0] -= 1
            else:
                with self._inflight_lock:
                    self._inflight -= 1
        elapsed = monotonic_s() - start
        self._observe_op(op, "ok" if response.ok else "error", elapsed)
        elapsed_ms = elapsed * 1000.0
        if self.slow_ops.should_record(elapsed_ms):
            self.slow_ops.record(
                op, elapsed_ms,
                peer=session.peer,
                user=session.user_name,
                request_id=request.id,
            )
        return response

    def _observe_op(
        self, op: str, status: str, elapsed_s: float | None
    ) -> None:
        """Feed one dispatched op into the counters (and histogram when
        it actually executed). Child lookups are cached per key; the
        benign race on the cache dicts just re-resolves the same child."""
        key = (op, status)
        counter = self._op_counters.get(key)
        if counter is None:
            counter = self._ops_total.labels(op=op, status=status)
            self._op_counters[key] = counter
        counter.inc()
        if elapsed_s is None:
            return
        timer = self._op_timers.get(op)
        if timer is None:
            timer = self._op_hist.labels(op=op)
            self._op_timers[op] = timer
        timer.observe(elapsed_s)

    def _dispatch_inner(
        self, session: ClientSession, request: Request
    ) -> Response:
        handler = _HANDLERS.get(request.op)
        if handler is None or request.op not in protocol.OPS:
            with self._state_lock:
                self.stats["op_errors"] += 1
            return Response.failure(
                request.id,
                BeliefDBError(f"unknown operation {request.op!r}"),
            )
        func, kind = handler
        try:
            if request.op in _LOCKLESS_OPS:
                # Served without the database lock: the metrics registry and
                # slow-op log carry their own (leaf) locks, so scrapes stay
                # responsive even when the writer lock is congested.
                result = func(self, session, request.params)
                with self._state_lock:
                    self.stats["ops_served"] += 1
                return Response.success(request.id, result)
            if request.op == "execute":
                # Parse before classifying so DML can be promoted to the
                # write lock (selects run lock-free from a pinned version).
                statement = session.rewrite(
                    parse_beliefsql(_require(request.params, "sql"))
                )
                if not isinstance(statement, SelectStatement):
                    if session.in_transaction:
                        raise TransactionError(
                            "the legacy execute op predates transactions "
                            "and cannot run DML inside one; use "
                            "execute_prepared (or commit/rollback first)"
                        )
                    kind = "write"
                func = BeliefServer._op_execute
                params: dict[str, Any] = {"statement": statement}
            elif request.op == "execute_prepared":
                # Resolve + session-rewrite the prepared statement outside the
                # lock (the BDMS statement cache has its own internal lock),
                # then classify read vs write by the statement kind.
                prepared, bind = self._resolve_prepared(session, request.params)
                if prepared.kind != "select" and session.in_transaction:
                    # In-transaction DML stages into the session's write
                    # buffer — no shared state is touched, so staging
                    # runs on the read side and writers are undisturbed.
                    func = BeliefServer._op_stage
                    params = {
                        "prepared": prepared,
                        "param_rows": [bind],
                        "many": False,
                    }
                else:
                    if prepared.kind != "select":
                        kind = "write"
                    params = {
                        "prepared": prepared,
                        "bind": bind,
                        "max_rows": _page_size(request.params, "max_rows"),
                    }
            elif request.op == "execute_batch":
                # DML-only: the whole batch runs under ONE write-lock
                # acquisition and (on durable servers) one WAL batch append —
                # or, inside a transaction, stages as one unit for commit.
                prepared, param_rows = self._resolve_batch(
                    session, request.params
                )
                if session.in_transaction:
                    func = BeliefServer._op_stage
                    params = {
                        "prepared": prepared,
                        "param_rows": param_rows,
                        "many": True,
                    }
                else:
                    kind = "write"
                    params = {"prepared": prepared, "param_rows": param_rows}
            elif (
                request.op in ("insert", "delete")
                and session.in_transaction
            ):
                # The programmatic tuple ops are not transactional; letting
                # them autocommit mid-transaction would silently interleave
                # with the staged group.
                raise TransactionError(
                    f"the {request.op} op is not transactional; use "
                    "execute_prepared inside a transaction"
                )
            else:
                params = request.params
            if self._exclusive(kind):
                guard: Any = self.lock.write()
            elif (
                request.op in _PINNED_READ_OPS
                and not self._force_locked_reads
            ):
                # MVCC: these reads evaluate against a pinned copy-on-write
                # version of the store (the BDMS pins one per call or the
                # handler pins one explicitly), so they need no lock at all —
                # a scan never blocks a writer and never observes one.
                guard = nullcontext()
            else:
                guard = self.lock.read()
            with guard:
                result = func(self, session, params)
            with self._state_lock:
                self.stats["ops_served"] += 1
            return Response.success(request.id, result)
        except Exception as exc:  # noqa: BLE001 — every op error travels back
            with self._state_lock:
                self.stats["op_errors"] += 1
            return Response.failure(request.id, exc)

    def _exclusive(self, kind: str) -> bool:
        # Only writes need the exclusive lock. The sqlite backend used to be
        # promoted here too (its shared mirror resynced inside the query
        # path); per-version mirrors removed that — reads now sync a private
        # mirror on their pinned snapshot, never shared with the writer.
        return kind == "write"

    # ---------------------------------------------------------------- op log

    def _record(self, entry: dict[str, Any]) -> None:
        """Append one accepted write to the serial-order log.

        Must be called while holding the write lock — the log order then
        equals the serialization order of the writer lock.
        """
        if not self.record_ops:
            return
        self._oplog_seq += 1
        self._oplog.append({"seq": self._oplog_seq, **entry})

    def oplog(self) -> list[dict[str, Any]]:
        with self.lock.read():
            return [dict(entry) for entry in self._oplog]

    # ------------------------------------------------------------- op bodies

    def _op_ping(self, session: ClientSession, params: dict[str, Any]) -> Any:
        return "pong"

    def _op_login(self, session: ClientSession, params: dict[str, Any]) -> Any:
        user = _require(params, "user")
        create = bool(params.get("create", False))
        store = self.db.store
        try:
            uid = store.resolve_user(user)
        except BeliefDBError:
            if not create or not isinstance(user, str):
                raise
            uid = self.db.add_user(user)
            self._record({"op": "add_user", "name": user, "uid": uid})
        session.login(uid, store.user_name(uid))
        return session.describe()

    def _op_logout(self, session: ClientSession, params: dict[str, Any]) -> Any:
        session.logout()
        return session.describe()

    def _op_whoami(self, session: ClientSession, params: dict[str, Any]) -> Any:
        return session.describe()

    def _op_set_path(self, session: ClientSession, params: dict[str, Any]) -> Any:
        path = _require(params, "path")
        if not isinstance(path, (list, tuple)):
            raise BeliefDBError("set_path expects a list of users")
        resolved = tuple(self.db.store.resolve_user(u) for u in path)
        session.set_path(resolved)
        return session.describe()

    def _op_add_user(self, session: ClientSession, params: dict[str, Any]) -> Any:
        name = params.get("name")
        # An explicit uid pins the assignment — the shard router uses this to
        # replicate one user identically across every worker's registry.
        uid = self.db.add_user(name, uid=params.get("uid"))
        self._record({"op": "add_user", "name": name, "uid": uid})
        return uid

    def _op_users(self, session: ClientSession, params: dict[str, Any]) -> Any:
        return [[uid, name] for uid, name in sorted(self.db.users().items(),
                                                    key=lambda kv: repr(kv[0]))]

    def _op_insert(self, session: ClientSession, params: dict[str, Any]) -> Any:
        path, relation, values, sign = self._statement_params(session, params)
        ok = self.db.insert(path, relation, values, sign)
        self._record({"op": "insert", "path": list(path), "relation": relation,
                      "values": list(values), "sign": sign, "ok": ok})
        return ok

    def _op_delete(self, session: ClientSession, params: dict[str, Any]) -> Any:
        path, relation, values, sign = self._statement_params(session, params)
        ok = self.db.delete(path, relation, values, sign)
        self._record({"op": "delete", "path": list(path), "relation": relation,
                      "values": list(values), "sign": sign, "ok": ok})
        return ok

    def _statement_params(
        self, session: ClientSession, params: dict[str, Any]
    ) -> tuple[tuple[Any, ...], str, list[Any], str]:
        relation = _require(params, "relation")
        values = _require(params, "values")
        if not isinstance(values, (list, tuple)):
            raise BeliefDBError("values must be a list")
        raw_path = params.get("path")
        if raw_path is not None and not isinstance(raw_path, (list, tuple)):
            raise BeliefDBError("path must be a list of users (or null)")
        path = session.effective_path(raw_path)
        resolved = tuple(self.db.store.resolve_user(u) for u in path)
        sign = params.get("sign", "+")
        return resolved, relation, list(values), sign

    def _op_execute(self, session: ClientSession, params: dict[str, Any]) -> Any:
        # ``statement`` was parsed and session-rewritten in _dispatch, outside
        # the lock; DML arrives here under the write lock, selects lock-free.
        statement = params["statement"]
        if isinstance(statement, SelectStatement) and session.in_transaction:
            # Legacy-op selects get the same read-your-own-writes view as
            # execute_prepared (uniform across the two execute surfaces).
            prepared = self.db.prepare_parsed(statement)
            result = self.db.execute_prepared(
                prepared, (), version=session.transaction().read_version()
            ).legacy()
        else:
            result = self.db.execute_statement(statement)
        if not isinstance(statement, SelectStatement):
            self._record({"op": "execute", "sql": str(statement),
                          "ok": _jsonify(result)})
        return _jsonify(result)

    # ------------------------------------------------- prepared statements

    def _resolve_prepared(
        self, session: ClientSession, params: dict[str, Any]
    ) -> tuple[PreparedStatement, tuple[Any, ...]]:
        """Resolve an ``execute_prepared`` request to a bindable statement.

        Accepts either a server-side handle from a prior ``prepare`` op
        (``stmt``) or one-shot SQL text (``sql``); both go through the BDMS
        statement cache. The session's default belief path is applied here —
        at execute time, not prepare time — so ``set_path``/``login`` between
        executions of one handle behaves like re-issuing the statement.
        """
        if "stmt" in params:
            prepared = session.statement(params["stmt"])
        elif "sql" in params:
            prepared = _require(params, "sql")
        else:
            raise BeliefDBError("execute_prepared needs 'stmt' or 'sql'")
        bind = params.get("params", [])
        if not isinstance(bind, (list, tuple)):
            raise BeliefDBError("params must be a list")
        return self.db.prepare_for_session(prepared, session), tuple(bind)

    def _op_prepare(self, session: ClientSession, params: dict[str, Any]) -> Any:
        prepared = self.db.prepare(_require(params, "sql"))
        stmt_id = session.register_statement(prepared)
        return {
            "stmt": stmt_id,
            "kind": prepared.kind,
            "param_count": prepared.param_count,
            "columns": list(prepared.columns),
        }

    def _op_close_statement(
        self, session: ClientSession, params: dict[str, Any]
    ) -> Any:
        return {"closed": session.close_statement(_require(params, "stmt"))}

    def _op_execute_prepared(
        self, session: ClientSession, params: dict[str, Any]
    ) -> Any:
        prepared: PreparedStatement = params["prepared"]
        bind: tuple[Any, ...] = params["bind"]
        version = None
        if prepared.kind == "select" and session.in_transaction:
            # Read-your-own-writes: in-transaction selects evaluate against
            # the session's private view (committed snapshot + staged DML).
            version = session.transaction().read_version()
        result = self.db.execute_prepared(prepared, bind, version=version)
        if prepared.kind != "select":
            bound = bind_statement(prepared.statement, bind)
            self._record({"op": "execute", "sql": str(bound),
                          "ok": _jsonify(result.legacy())})
        max_rows = params["max_rows"]
        rows = result.rows
        first, rest = rows[:max_rows], rows[max_rows:]
        cursor_id = session.register_cursor(rest) if rest else None
        # Metadata assembled by hand (not result.to_wire()): serializing the
        # full row set just to overwrite it with the first page would be
        # O(total rows) of waste under the db lock.
        return {
            "kind": result.kind,
            "columns": list(result.columns),
            "rowcount": result.rowcount,
            "status": result.status,
            "elapsed_ms": result.elapsed_ms,
            "rows": _jsonify(first),
            "cursor": cursor_id,
            "has_more": bool(rest),
        }

    def _resolve_batch(
        self, session: ClientSession, params: dict[str, Any]
    ) -> tuple[PreparedStatement, list[tuple[Any, ...]]]:
        """Resolve an ``execute_batch`` request: prepared DML + param rows."""
        prepared, _ = self._resolve_prepared(
            session, {k: v for k, v in params.items() if k != "param_rows"}
        )
        if prepared.kind == "select":
            raise BeliefDBError("execute_batch is for DML, not select")
        rows = _require(params, "param_rows")
        if not isinstance(rows, list) or not all(
            isinstance(row, (list, tuple)) for row in rows
        ):
            raise BeliefDBError("param_rows must be a list of lists")
        return prepared, [tuple(row) for row in rows]

    def _op_execute_batch(
        self, session: ClientSession, params: dict[str, Any]
    ) -> Any:
        prepared: PreparedStatement = params["prepared"]
        param_rows: list[tuple[Any, ...]] = params["param_rows"]
        try:
            result = self.db.execute_batch(prepared, param_rows)
        except BeliefDBError as exc:
            # Strict mode stops at the first rejected row, but the applied
            # prefix stays applied (and WAL-logged) — record it so the op
            # log still replays to the same state.
            applied = getattr(exc, "partial_rowcounts", None)
            if applied:
                self._record({
                    "op": "execute_batch",
                    "sql": prepared.sql,
                    "param_rows": _jsonify(param_rows[:len(applied)]),
                    "ok": sum(applied),
                })
            raise
        self._record({
            "op": "execute_batch",
            "sql": prepared.sql,
            "param_rows": _jsonify(param_rows),
            "ok": result.rowcount,
        })
        return self._result_payload(result)

    # --------------------------------------------------------- transactions

    @staticmethod
    def _result_payload(result: Any) -> dict[str, Any]:
        """The structured result envelope for row-less (DML/txn) results:
        the Result's own wire form plus the (empty) paging fields."""
        return {**result.to_wire(), "cursor": None, "has_more": False}

    def _op_begin(self, session: ClientSession, params: dict[str, Any]) -> Any:
        if session.in_transaction:
            # Reject before creating anything, so a double begin cannot
            # leak an orphaned Transaction or skew the begun counter.
            raise TransactionError(
                "a transaction is already open on this session"
            )
        txn = self.db.begin_transaction()
        try:
            session.begin_transaction(txn)
        except TransactionError:
            txn.discard()  # raced a concurrent begin; keep the ledger sane
            raise
        return session.describe()

    def _op_commit(self, session: ClientSession, params: dict[str, Any]) -> Any:
        # Runs under the exclusive write lock: the whole staged group
        # applies in one lock hold (and one WAL fsync), so no reader ever
        # observes a partial transaction. A mid-apply rejection rolls the
        # prefix back inside commit_transaction and raises — the session's
        # transaction is consumed either way.
        txn = session.take_transaction()
        result = self.db.commit_transaction(txn)
        if txn.applied_entries:
            self._record({
                "op": "txn",
                "statements": [
                    {"sql": entry["sql"], "params": entry["params"]}
                    for entry in txn.applied_entries
                ],
                "ok": result.rowcount,
            })
        return self._result_payload(result)

    def _op_rollback(
        self, session: ClientSession, params: dict[str, Any]
    ) -> Any:
        return {"discarded": session.rollback_transaction()}

    def _op_stage(self, session: ClientSession, params: dict[str, Any]) -> Any:
        """Stage in-transaction DML into the session's write buffer.

        Routed here by ``_dispatch`` for ``execute_prepared`` and
        ``execute_batch`` while the session has an open transaction; runs
        under the shared read lock (the buffer is per-session, the store
        untouched).
        """
        prepared: PreparedStatement = params["prepared"]
        txn = session.transaction()
        if params["many"]:
            result = txn.stage_batch(prepared, params["param_rows"])
        else:
            result = txn.stage(prepared, params["param_rows"][0])
        return self._result_payload(result)

    def _op_fetch(self, session: ClientSession, params: dict[str, Any]) -> Any:
        count = _page_size(params, "n")
        rows, has_more = session.fetch_rows(_require(params, "cursor"), count)
        return {"rows": _jsonify(rows), "has_more": has_more}

    def _op_close_cursor(
        self, session: ClientSession, params: dict[str, Any]
    ) -> Any:
        return {"closed": session.close_cursor(_require(params, "cursor"))}

    def _op_query(self, session: ClientSession, params: dict[str, Any]) -> Any:
        return _jsonify(self.db.query(_require(params, "bcq")))

    def _op_believes(self, session: ClientSession, params: dict[str, Any]) -> Any:
        relation = _require(params, "relation")
        values = _require(params, "values")
        path = session.effective_path(params.get("path"))
        sign = params.get("sign", "+")
        return self.db.believes(path, relation, values, sign)

    def _op_world(self, session: ClientSession, params: dict[str, Any]) -> Any:
        path = session.effective_path(params.get("path"))
        with self.db.read_view() as version:
            store = version.store
            resolved = tuple(store.resolve_user(u) for u in path)
            world = store.entailed_world(resolved)
        return {
            "path": _jsonify(resolved),
            "label": format_path(resolved),
            "positives": sorted(str(t) for t in world.positives),
            "negatives": sorted(str(t) for t in world.negatives),
        }

    def _op_worlds(self, session: ClientSession, params: dict[str, Any]) -> Any:
        out = []
        # One pin across the whole iteration: the listing is a consistent
        # cut of a single version, no matter how many commits land mid-scan.
        with self.db.read_view() as version:
            store = version.store
            for path in sorted(store.states(),
                               key=lambda p: (len(p), repr(p))):
                world = store.entailed_world(path)
                out.append({
                    "path": _jsonify(path),
                    "label": format_path(path),
                    "positives": len(world.positives),
                    "negatives": len(world.negatives),
                })
        return out

    def _op_stats(self, session: ClientSession, params: dict[str, Any]) -> Any:
        snapshot = self.db.snapshot_stats()
        with self._state_lock:
            server = dict(self.stats)
        server["inflight_requests"] = self._inflight_now()
        server["sessions_active"] = server["connections_active"]
        server["uptime_seconds"] = round(self._uptime(), 3)
        server["max_sessions"] = self.max_sessions
        server["max_inflight_requests"] = self.max_inflight_requests
        server["slow_ops_recorded"] = self.slow_ops.recorded_total
        snapshot["server"] = server
        return snapshot

    def _op_metrics(self, session: ClientSession, params: dict[str, Any]) -> Any:
        """The full registry + slow-op trace, JSON-plain.

        Dispatched *without* the database lock (see ``_dispatch_inner``) and
        exempt from request shedding, so observability survives overload —
        the one time you need it most.
        """
        return {
            "families": self.metrics.snapshot(),
            "slow_ops": self.slow_ops.snapshot(),
        }

    # ---------------------------------------------------- lifecycle & audit

    def _op_lifecycle(
        self, session: ClientSession, params: dict[str, Any]
    ) -> Any:
        """One curation write: propose / transition / decay_sweep.

        Runs under the exclusive write lock; the op-log entry carries the
        resolved arguments *and* the server-stamped timestamp, so replaying
        the log rebuilds the exact audit history (ids and event order are
        deterministic functions of the record contents).
        """
        if session.in_transaction:
            # Lifecycle transitions are compare-and-swap ops against the
            # live registry; staging them would let a later commit reorder
            # around the compare and hand both racing curators a win.
            raise TransactionError(
                "lifecycle operations are not transactional; "
                "commit or rollback first"
            )
        action = _require(params, "action")
        # Attribution: an explicit actor wins; otherwise the logged-in
        # curator (clients send actor=null, so a plain .get default won't do).
        actor = params.get("actor")
        if actor is None:
            actor = session.user
        ts = time.time()
        if action == "propose":
            raw_path = params.get("path")
            if raw_path is not None and not isinstance(raw_path, (list, tuple)):
                raise BeliefDBError("path must be a list of users (or null)")
            result = self.db.lifecycle_propose(
                session.effective_path(raw_path),
                _require(params, "relation"),
                _require(params, "values"),
                params.get("sign", "+"),
                actor=actor,
                confidence=params.get("confidence", 1.0),
                decay=params.get("decay", "none"),
                derived_from=params.get("derived_from", ()),
                ts=ts,
            )
            self._record({
                "op": "lifecycle", "action": "propose",
                "path": result["path"], "relation": result["relation"],
                "values": result["values"], "sign": result["sign"],
                "actor": result["actor"],
                "confidence": result["confidence"],
                "decay": result["decay"],
                "derived_from": result["derived_from"],
                "ts": ts, "ok": result["belief"],
            })
        elif action == "transition":
            belief = _require(params, "belief")
            to = _require(params, "to")
            expect = params.get("expect")
            reason = params.get("reason")
            result = self.db.lifecycle_transition(
                belief, to, actor=actor, expect=expect, reason=reason, ts=ts,
            )
            self._record({
                "op": "lifecycle", "action": "transition",
                "belief": belief, "to": to, "expect": expect,
                "reason": reason, "actor": result["actor"],
                "ts": ts, "ok": result["status"],
            })
        elif action == "decay_sweep":
            result = self.db.lifecycle_decay_sweep(actor=actor, now=ts)
            self._record({
                "op": "lifecycle", "action": "decay_sweep",
                "actor": (
                    self.db.store.resolve_user(actor)
                    if actor is not None else None
                ),
                "ts": ts, "ok": dict(result),
            })
        else:
            raise BeliefDBError(f"unknown lifecycle action {action!r}")
        return _jsonify(result)

    def _op_audit(self, session: ClientSession, params: dict[str, Any]) -> Any:
        """Lifecycle reads: the audit log, one record, the review queue,
        or a provenance chain. All evaluate against a pinned MVCC version
        (the BDMS pins one per call), so they never queue behind writers."""
        kind = params.get("kind", "log")
        if kind == "log":
            return _jsonify(self.db.audit_log(
                belief=params.get("belief"), limit=params.get("limit"),
            ))
        if kind == "record":
            return _jsonify(self.db.lifecycle_get(_require(params, "belief")))
        if kind == "queue":
            raw_path = params.get("path")
            if raw_path is not None and not isinstance(raw_path, (list, tuple)):
                raise BeliefDBError("path must be a list of users (or null)")
            return _jsonify(self.db.lifecycle_list(
                path=raw_path, status=params.get("status"),
                limit=params.get("limit"),
            ))
        if kind == "provenance":
            return _jsonify(self.db.provenance(_require(params, "belief")))
        raise BeliefDBError(
            f"unknown audit kind {kind!r}; expected log, record, "
            "queue, or provenance"
        )

    def _op_kripke(self, session: ClientSession, params: dict[str, Any]) -> Any:
        return self.db.kripke().describe()

    def _op_describe(self, session: ClientSession, params: dict[str, Any]) -> Any:
        return self.db.describe()


def _require(params: dict[str, Any], key: str) -> Any:
    if key not in params:
        raise BeliefDBError(f"missing required parameter {key!r}")
    return params[key]


def _page_size(params: dict[str, Any], key: str) -> int:
    value = params.get(key, DEFAULT_PAGE_ROWS)
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise BeliefDBError(f"{key} must be a positive int, got {value!r}")
    return value


#: op name -> (bound-method extractor, "read" | "write").
_HANDLERS: dict[str, tuple[Callable[..., Any], str]] = {
    "ping": (BeliefServer._op_ping, "read"),
    "login": (BeliefServer._op_login, "write"),
    "logout": (BeliefServer._op_logout, "read"),
    "whoami": (BeliefServer._op_whoami, "read"),
    "set_path": (BeliefServer._op_set_path, "read"),
    "add_user": (BeliefServer._op_add_user, "write"),
    "users": (BeliefServer._op_users, "read"),
    "insert": (BeliefServer._op_insert, "write"),
    "delete": (BeliefServer._op_delete, "write"),
    "execute": (BeliefServer._op_execute, "read"),  # DML promoted in _dispatch
    "prepare": (BeliefServer._op_prepare, "read"),
    "execute_prepared": (BeliefServer._op_execute_prepared, "read"),  # ditto
    "execute_batch": (BeliefServer._op_execute_batch, "write"),
    "close_statement": (BeliefServer._op_close_statement, "read"),
    # begin/rollback only touch the per-session buffer (read side); commit
    # applies the whole group under one exclusive write-lock acquisition.
    "begin": (BeliefServer._op_begin, "read"),
    "commit": (BeliefServer._op_commit, "write"),
    "rollback": (BeliefServer._op_rollback, "read"),
    "fetch": (BeliefServer._op_fetch, "read"),
    "close_cursor": (BeliefServer._op_close_cursor, "read"),
    "query": (BeliefServer._op_query, "read"),
    "believes": (BeliefServer._op_believes, "read"),
    "world": (BeliefServer._op_world, "read"),
    "worlds": (BeliefServer._op_worlds, "read"),
    "stats": (BeliefServer._op_stats, "read"),
    "metrics": (BeliefServer._op_metrics, "read"),  # lockless; see _dispatch
    "kripke": (BeliefServer._op_kripke, "read"),
    "describe": (BeliefServer._op_describe, "read"),
    "lifecycle": (BeliefServer._op_lifecycle, "write"),
    "audit": (BeliefServer._op_audit, "read"),  # pinned MVCC read
}

#: Ops served without taking the database lock at all (``ping`` touches no
#: shared state; ``metrics`` reads structures with their own leaf locks).
_LOCKLESS_OPS = frozenset({"ping", "metrics"})

#: Read ops that evaluate against a *pinned MVCC version* and therefore skip
#: the readers-writer lock entirely (see ``_dispatch_inner``): the BDMS pins
#: a copy-on-write snapshot per call (``query``/``believes``/select
#: ``execute``/``execute_prepared``/``stats``) or the handler pins one
#: explicitly across its whole iteration (``world``/``worlds``). Staging
#: in-transaction DML rides the same ops and only touches the per-session
#: buffer. ``kripke``/``describe`` and the session/catalog ops stay on the
#: shared read lock — they read the live store directly.
_PINNED_READ_OPS = frozenset({
    "execute", "execute_prepared", "query", "believes",
    "world", "worlds", "stats", "audit",
})

#: Module-level alias of :attr:`BeliefServer.shed_exempt_ops` (the class
#: attribute is authoritative; the router core overrides it).
_SHED_EXEMPT_OPS = BeliefServer.shed_exempt_ops


def replay_oplog(db: BeliefDBMS, entries: Sequence[dict[str, Any]]) -> None:
    """Re-execute an op log serially against a fresh BDMS.

    Used by the linearizability tests: a concurrent run recorded under the
    writer lock, replayed here in log order, must produce the same database
    *and* the same per-op outcomes.
    """
    for entry in entries:
        op = entry["op"]
        if op == "add_user":
            uid = db.add_user(entry["name"], uid=entry.get("uid"))
            if entry.get("uid") is not None and uid != entry["uid"]:
                raise BeliefDBError(
                    f"replay diverged: add_user gave {uid!r}, log has {entry['uid']!r}"
                )
        elif op in ("insert", "delete"):
            func = db.insert if op == "insert" else db.delete
            try:
                ok = func(entry["path"], entry["relation"], entry["values"],
                          entry["sign"])
            except BeliefDBError:
                ok = False
            if ok != entry["ok"]:
                raise BeliefDBError(
                    f"replay diverged at seq {entry['seq']}: {op} gave {ok!r}, "
                    f"log has {entry['ok']!r}"
                )
        elif op == "execute":
            try:
                result = _jsonify(db.execute_sql(entry["sql"]).legacy())
            except BeliefDBError:
                result = False
            if result != entry["ok"]:
                raise BeliefDBError(
                    f"replay diverged at seq {entry['seq']}: execute gave "
                    f"{result!r}, log has {entry['ok']!r}"
                )
        elif op == "execute_batch":
            try:
                result = db.execute_batch(
                    entry["sql"],
                    [tuple(row) for row in entry["param_rows"]],
                ).rowcount
            except BeliefDBError:
                result = False
            if result != entry["ok"]:
                raise BeliefDBError(
                    f"replay diverged at seq {entry['seq']}: execute_batch "
                    f"gave {result!r}, log has {entry['ok']!r}"
                )
        elif op == "lifecycle":
            # The entry *is* the lifecycle WAL record (plus seq/ok); replay
            # feeds it through the same deterministic apply path recovery
            # uses, so ids, statuses, and audit events come out identical.
            try:
                applied = db.apply_lifecycle_record(
                    {k: v for k, v in entry.items() if k not in ("seq", "ok")}
                )
                if entry["action"] == "propose":
                    result = applied["belief"]
                elif entry["action"] == "transition":
                    result = applied["status"]
                else:
                    result = dict(applied)
            except BeliefDBError:
                result = False
            if result != entry["ok"]:
                raise BeliefDBError(
                    f"replay diverged at seq {entry['seq']}: lifecycle "
                    f"{entry['action']} gave {result!r}, log has "
                    f"{entry['ok']!r}"
                )
        elif op == "txn":
            # A committed transaction replays as its statements in commit
            # order — serially equivalent, since the original applied them
            # under one uninterrupted write-lock hold.
            try:
                result = 0
                for stmt in entry["statements"]:
                    result += db.execute_sql(
                        stmt["sql"], tuple(stmt.get("params", ()))
                    ).rowcount
            except BeliefDBError:
                result = False
            if result != entry["ok"]:
                raise BeliefDBError(
                    f"replay diverged at seq {entry['seq']}: txn gave "
                    f"{result!r}, log has {entry['ok']!r}"
                )
        else:
            raise BeliefDBError(f"unknown oplog entry {entry!r}")

"""Blocking client for the belief server.

:class:`BeliefClient` speaks the :mod:`repro.server.protocol` wire format over
one TCP connection. Calls are synchronous (send request, wait for response)
and thread-safe — a lock serializes frames so one client object can be shared,
though the concurrency benchmarks give each worker thread its own connection,
as a real deployment would.

Errors raised by the server travel back as typed error frames; the client
re-raises them as the matching :mod:`repro.errors` class when one exists
(e.g. a rejected insert raises :class:`~repro.errors.RejectedUpdateError`
client-side too), else as :class:`RemoteError`.

Example::

    with BeliefClient("127.0.0.1", 5433) as client:
        client.login("Carol", create=True)
        client.execute("insert into Sightings values "
                       "('s1','Carol','bald eagle','6-14-08','Lake Forest')")
        rows = client.execute("select S.sid, S.species from Sightings as S")
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

import repro.errors as _errors
from repro.errors import BeliefDBError
from repro.server import protocol
from repro.server.protocol import ProtocolError, Request, Response


@dataclass(frozen=True)
class RemoteStatement:
    """A server-side prepared-statement handle (from :meth:`BeliefClient.prepare`)."""

    id: int
    kind: str
    param_count: int
    columns: tuple[str, ...]

#: Error types the server may send that map back to local exception classes.
_ERROR_TYPES: dict[str, type[BeliefDBError]] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, BeliefDBError)
}


class RemoteError(BeliefDBError):
    """A server-side failure with no matching local exception class."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class ConnectionLost(BeliefDBError):
    """The connection died mid-call or could not be established."""


def _names_session_state(params: dict[str, Any]) -> bool:
    """Does this request reference per-session server state (a prepared-
    statement handle or cursor id) that cannot survive a reconnect?"""
    return "stmt" in params or "cursor" in params


class BeliefClient:
    """A synchronous connection to a :class:`~repro.server.server.BeliefServer`.

    Parameters
    ----------
    host / port:
        Server address.
    connect_retries / retry_delay:
        The initial connect is retried (helpful when the server is still
        binding); call latency is not — a lost connection raises
        :class:`ConnectionLost`.
    timeout:
        Socket timeout in seconds for connect and each response.
    auto_reconnect:
        Recovery path for server restarts. When True, a call that finds the
        connection gone makes **one bounded reconnect attempt** (a single
        fresh TCP connect, after which :attr:`on_reconnect` — if set — may
        re-establish session state) before the request is sent; a send
        failure likewise retries once on a fresh connection. A call whose
        request was already on the wire when the connection died is *never*
        retried — the server may have applied it — so that call still
        raises :class:`ConnectionLost`, and the *next* call reconnects.
        Explicit :meth:`close` always wins: a client closed by its owner
        stays closed. Default False (a lost connection is terminal, the
        pre-durability behavior).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5433,
        connect_retries: int = 10,
        retry_delay: float = 0.05,
        timeout: float = 30.0,
        auto_reconnect: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auto_reconnect = auto_reconnect
        #: Called with this client after a successful reconnect, before the
        #: pending request is resent — the hook for session re-establishment
        #: (login, default path); see :class:`repro.api.RemoteConnection`.
        self.on_reconnect: Any = None
        # Reentrant: on_reconnect callbacks issue their own calls while the
        # frame lock is held by the reconnecting call.
        self._lock = threading.RLock()
        self._request_id = 0
        self._sock: socket.socket | None = None
        self._user_closed = False
        self._reconnecting = False
        self._connect(connect_retries, retry_delay)

    def _connect(self, retries: int, delay: float) -> None:
        last: Exception | None = None
        for attempt in range(max(1, retries)):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                return
            except OSError as exc:
                last = exc
                if attempt + 1 < retries:
                    time.sleep(delay)
        raise ConnectionLost(
            f"could not connect to {self.host}:{self.port} "
            f"after {max(1, retries)} attempts: {last}"
        )

    # -------------------------------------------------------------- plumbing

    def call(self, op: str, **params: Any) -> Any:
        """Send one request and return the server's result (or raise)."""
        with self._lock:
            if self._sock is None:
                if self._user_closed:
                    raise ConnectionLost("client is closed")
                if not self.auto_reconnect or self._reconnecting:
                    raise ConnectionLost(
                        "connection to server lost "
                        "(auto_reconnect disabled; create a new client)"
                    )
                if _names_session_state(params):
                    # A fresh session cannot know the old connection's
                    # prepared-statement/cursor handles; reconnecting just
                    # to be told "unknown statement" would hide the truth.
                    raise ConnectionLost(
                        "connection to server lost and the request names "
                        "per-session state (a prepared statement or cursor) "
                        "that did not survive it; re-prepare after "
                        "reconnecting"
                    )
                self._reconnect_locked()
                reconnected = True
            else:
                reconnected = False
            self._request_id += 1
            request = Request(id=self._request_id, op=op, params=params)
            try:
                protocol.write_frame(self._sock, request.to_wire())
            except (OSError, ProtocolError) as exc:
                # The connection died under the send. The server cannot have
                # seen a complete frame, so resending once on a fresh
                # connection is safe (unlike a lost *response*, below) —
                # except for requests naming per-session server state
                # (prepared-statement handles, cursor ids): those died with
                # the old session, and resending would surface a misleading
                # "unknown statement/cursor" error instead of the truth.
                self._drop()
                if (
                    not self.auto_reconnect
                    or self._reconnecting
                    or reconnected  # this call already used its one attempt
                    or _names_session_state(params)
                ):
                    raise ConnectionLost(
                        f"connection to server lost: {exc}"
                    ) from exc
                self._reconnect_locked()
                try:
                    protocol.write_frame(self._sock, request.to_wire())
                except (OSError, ProtocolError) as retry_exc:
                    self._drop()
                    raise ConnectionLost(
                        "send failed again after one reconnect attempt: "
                        f"{retry_exc}"
                    ) from retry_exc
            try:
                payload = protocol.read_frame(self._sock)
            except (OSError, ProtocolError) as exc:
                self._drop()
                raise ConnectionLost(
                    self._response_lost(f"connection to server lost: {exc}")
                ) from exc
            if payload is None:
                self._drop()
                raise ConnectionLost(
                    self._response_lost("server closed the connection")
                )
        try:
            response = Response.from_wire(payload)
        except ProtocolError:
            self._drop()  # malformed response: the stream cannot be trusted
            raise
        if response.id != request.id:
            # The stream is desynchronized; keeping the socket would pair
            # future responses with the wrong requests. Fail closed.
            self._drop()
            raise ProtocolError(
                f"response id {response.id} does not match request {request.id}"
            )
        if response.ok:
            return response.result
        assert response.error is not None
        exc_type = _ERROR_TYPES.get(response.error["type"])
        if exc_type is not None:
            raise exc_type(response.error["message"])
        raise RemoteError(response.error["type"], response.error["message"])

    def _response_lost(self, detail: str) -> str:
        """Error text for a request whose response never arrived."""
        message = (
            f"{detail}; the in-flight request may or may not have been "
            "applied"
        )
        if self.auto_reconnect:
            message += "; the next call will attempt to reconnect"
        return message

    def reconnect(self) -> None:
        """Make one bounded reconnect attempt (then session re-establishment).

        Raises :class:`ConnectionLost` when the single fresh connect fails,
        or when this client was explicitly closed by its owner.
        """
        with self._lock:
            if self._user_closed:
                raise ConnectionLost("client is closed")
            self._reconnect_locked()

    def _reconnect_locked(self) -> None:
        self._drop()
        self._reconnecting = True
        try:
            try:
                self._connect(retries=1, delay=0.0)
            except ConnectionLost as exc:
                raise ConnectionLost(
                    f"one reconnect attempt to {self.host}:{self.port} "
                    f"failed: {exc}"
                ) from exc
            if self.on_reconnect is not None:
                # Let the owner restore session state (login/default path)
                # before the interrupted workload resumes.
                self.on_reconnect(self)
        finally:
            self._reconnecting = False

    def _drop(self) -> None:
        """Tear down the socket without marking the client user-closed."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._user_closed = True
        self._drop()

    def __enter__(self) -> "BeliefClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """No socket and no way to get one back.

        An ``auto_reconnect`` client whose connection dropped is *not*
        closed — the next call makes its bounded reconnect attempt — unless
        the owner explicitly called :meth:`close`.
        """
        if self._sock is not None:
            return False
        return self._user_closed or not self.auto_reconnect

    # ------------------------------------------------------------------- ops

    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def login(self, user: Any, create: bool = False) -> dict[str, Any]:
        """Authenticate as ``user`` (name or uid); sets the default path."""
        return self.call("login", user=user, create=create)

    def logout(self) -> dict[str, Any]:
        return self.call("logout")

    def whoami(self) -> dict[str, Any]:
        return self.call("whoami")

    def set_path(self, path: Sequence[Any]) -> dict[str, Any]:
        return self.call("set_path", path=list(path))

    def add_user(self, name: str | None = None) -> Any:
        return self.call("add_user", name=name)

    def users(self) -> dict[Any, str]:
        return {uid: name for uid, name in self.call("users")}

    def insert(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        """Insert a belief statement; ``path=None`` means the session world."""
        return self.call(
            "insert", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    def delete(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        return self.call(
            "delete", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    def dispute(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
    ) -> bool:
        """Insert a negative belief — "I do not believe this tuple"."""
        return self.insert(relation, values, path=path, sign="-")

    def execute(self, sql: str) -> list[list[Any]] | bool | int:
        """Run one BeliefSQL statement (session default path applies)."""
        return self.call("execute", sql=sql)

    # ------------------------------------------------- prepared statements

    def prepare(self, sql: str) -> RemoteStatement:
        """Prepare a statement server-side; returns a reusable handle."""
        info = self.call("prepare", sql=sql)
        return RemoteStatement(
            id=info["stmt"],
            kind=info["kind"],
            param_count=info["param_count"],
            columns=tuple(info["columns"]),
        )

    def execute_prepared(
        self,
        statement: RemoteStatement | str,
        params: Sequence[Any] = (),
        max_rows: int | None = None,
    ) -> dict[str, Any]:
        """Execute a prepared handle (or one-shot SQL) with ``?`` parameters.

        Returns the structured result payload: ``kind``, ``columns``,
        ``rowcount``, ``status``, ``elapsed_ms``, the first page of ``rows``,
        and — for large results — a ``cursor`` to :meth:`fetch` the rest.
        """
        call_params: dict[str, Any] = {"params": list(params)}
        if isinstance(statement, RemoteStatement):
            call_params["stmt"] = statement.id
        else:
            call_params["sql"] = statement
        if max_rows is not None:
            call_params["max_rows"] = max_rows
        return self.call("execute_prepared", **call_params)

    def close_statement(self, statement: RemoteStatement | int) -> bool:
        stmt_id = statement.id if isinstance(statement, RemoteStatement) else statement
        return bool(self.call("close_statement", stmt=stmt_id)["closed"])

    def fetch(self, cursor_id: int, n: int | None = None) -> dict[str, Any]:
        """Next page of a paged result: ``{"rows": [...], "has_more": bool}``."""
        if n is None:
            return self.call("fetch", cursor=cursor_id)
        return self.call("fetch", cursor=cursor_id, n=n)

    def drain(self, payload: dict[str, Any]) -> list[list[Any]]:
        """All rows of an ``execute_prepared`` payload, fetching the paged
        tail from the server's cursor when the first page was not the end."""
        rows = list(payload["rows"])
        cursor_id = payload.get("cursor")
        has_more = bool(payload.get("has_more"))
        while has_more and cursor_id is not None:
            page = self.fetch(cursor_id)
            rows.extend(page["rows"])
            has_more = bool(page["has_more"])
        return rows

    def close_cursor(self, cursor_id: int) -> bool:
        return bool(self.call("close_cursor", cursor=cursor_id)["closed"])

    def query(self, bcq: str) -> list[list[Any]]:
        return self.call("query", bcq=bcq)

    def believes(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        return self.call(
            "believes", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    def world(self, path: Sequence[Any] | None = None) -> dict[str, Any]:
        return self.call("world", path=None if path is None else list(path))

    def worlds(self) -> list[dict[str, Any]]:
        return self.call("worlds")

    def stats(self) -> dict[str, Any]:
        return self.call("stats")

    def kripke(self) -> str:
        return self.call("kripke")

    def describe(self) -> str:
        return self.call("describe")

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<BeliefClient {self.host}:{self.port} ({state})>"

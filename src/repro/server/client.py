"""Blocking (and pipelined) client for the belief server.

:class:`BeliefClient` speaks the :mod:`repro.server.protocol` wire format over
one TCP connection. :meth:`BeliefClient.call` is synchronous (send request,
wait for response); :meth:`BeliefClient.submit` *pipelines* — it sends the
request and returns a :class:`PendingReply` immediately, so many requests can
be in flight on one connection. Responses are correlated strictly by request
id, so they may arrive out of order (the async server completes in-flight
requests concurrently) and still resolve the right pending reply. The client
is thread-safe — a lock serializes frame I/O — though pipelining pays off
when one thread issues a window of submits before resolving results.

Errors raised by the server travel back as typed error frames; the client
re-raises them as the matching :mod:`repro.errors` class when one exists
(e.g. a rejected insert raises :class:`~repro.errors.RejectedUpdateError`
client-side too), else as :class:`RemoteError`. A connection that dies with
requests in flight fails **all** of them with :class:`ConnectionLost` — a
lost response is never retried, and a reconnect always drains the pipeline
first.

Example::

    with BeliefClient("127.0.0.1", 5433) as client:
        client.login("Carol", create=True)
        client.execute("insert into Sightings values "
                       "('s1','Carol','bald eagle','6-14-08','Lake Forest')")
        rows = client.execute("select S.sid, S.species from Sightings as S")

        # pipelined: one round-trip wait for a whole window of requests
        pending = [client.submit("believes", relation="Sightings",
                                 values=["s1", "Carol", "bald eagle",
                                         "6-14-08", "Lake Forest"],
                                 path=["Carol"], sign="+")
                   for _ in range(16)]
        answers = [p.result() for p in pending]
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

import repro.errors as _errors
from repro.errors import BeliefDBError, FrameTooLargeError
from repro.server import binproto, protocol
from repro.server.protocol import ProtocolError, Request, Response


@dataclass(frozen=True)
class RemoteStatement:
    """A server-side prepared-statement handle (from :meth:`BeliefClient.prepare`)."""

    id: int
    kind: str
    param_count: int
    columns: tuple[str, ...]

#: Error types the server may send that map back to local exception classes.
_ERROR_TYPES: dict[str, type[BeliefDBError]] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, BeliefDBError)
}


class RemoteError(BeliefDBError):
    """A server-side failure with no matching local exception class."""

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


def unwrap_response(response: "Response") -> Any:
    """A response's result, or the travelled error re-raised typed."""
    if response.ok:
        return response.result
    assert response.error is not None
    exc_type = _ERROR_TYPES.get(response.error["type"])
    if exc_type is not None:
        raise exc_type(response.error["message"])
    raise RemoteError(response.error["type"], response.error["message"])


def batch_statement_params(statement: "RemoteStatement | str") -> dict[str, Any]:
    """The ``stmt``/``sql`` addressing half of an ``execute_batch`` call."""
    if isinstance(statement, RemoteStatement):
        return {"stmt": statement.id}
    return {"sql": statement}


#: Byte budget per execute_batch chunk — a third of the frame ceiling.
#: :func:`_estimated_row_bytes` can undercount an all-escapes ASCII string
#: by 2x (every ``"`` / ``\\`` doubles when JSON-escaped), so a third —
#: not half — keeps even that pathological chunk under the 1 MiB ceiling
#: with room for the op envelope.
MAX_BATCH_CHUNK_BYTES = protocol.MAX_FRAME_BYTES // 3


def _estimated_row_bytes(row: "list[Any]") -> int:
    """A cheap upper-leaning estimate of one row's JSON-encoded size.

    Deliberately NOT ``len(json.dumps(row))`` — that would serialize every
    batch twice (once here, once in ``encode_frame``) on the hot bulk-write
    path. ASCII strings count their length (escaping may double it — the
    budget's 3x headroom absorbs that); non-ASCII strings count 6 bytes per
    char, the ``\\uXXXX`` worst case, so they can only be overcounted.
    """
    total = 2  # brackets
    for value in row:
        if isinstance(value, str):
            total += (len(value) if value.isascii() else 6 * len(value)) + 3
        else:
            total += 24  # numbers; anything else fails validation later
    return total


def iter_batch_chunks(
    param_rows: Sequence[Sequence[Any]], chunk_rows: int,
    max_chunk_bytes: int = MAX_BATCH_CHUNK_BYTES,
) -> "list[list[list[Any]]]":
    """Split a batch into wire-sized chunks (an empty batch is one chunk,
    so the statement still gets validated server-side).

    Chunks are bounded by ``chunk_rows`` AND by estimated encoded size
    (``max_chunk_bytes``, default a third of the default frame ceiling), so
    wide rows cannot push a chunk past the frame ceiling. A single row
    larger than the budget still travels alone — if it alone cannot be
    framed, the send raises a local
    :class:`~repro.errors.FrameTooLargeError` without touching the
    connection.
    """
    chunks: list[list[list[Any]]] = []
    current: list[list[Any]] = []
    current_bytes = 0
    for raw in param_rows:
        row = list(raw)
        row_bytes = _estimated_row_bytes(row)
        if current and (
            len(current) >= max(1, chunk_rows)
            or current_bytes + row_bytes > max_chunk_bytes
        ):
            chunks.append(current)
            current, current_bytes = [], 0
        current.append(row)
        current_bytes += row_bytes
    chunks.append(current)
    return chunks


def merge_batch_payload(
    payload: dict[str, Any] | None, part: dict[str, Any]
) -> dict[str, Any]:
    """Fold one chunk's result payload into the running aggregate."""
    if payload is None:
        return part
    payload["elapsed_ms"] += part["elapsed_ms"]
    if payload["rowcount"] < 0 or part["rowcount"] < 0:
        # In-transaction chunks are *staged* (rowcount -1, unknowable
        # before commit); the aggregate keeps the uniform staged shape.
        payload["rowcount"] = -1
        payload["status"] = f"{part['kind'].upper()} STAGED"
        return payload
    payload["rowcount"] += part["rowcount"]
    payload["status"] = f"{part['kind'].upper()} {payload['rowcount']}"
    return payload


class ConnectionLost(BeliefDBError):
    """The connection died mid-call or could not be established."""


def _names_session_state(op: str, params: dict[str, Any]) -> bool:
    """Does this request reference per-session server state (a prepared-
    statement handle, a cursor id, or an open transaction) that cannot
    survive a reconnect? ``commit``/``rollback`` qualify: the transaction
    they address died with the old session, and reconnecting just to be
    told "no transaction is open" would hide the loss."""
    return "stmt" in params or "cursor" in params or op in (
        "commit", "rollback",
    )


#: In-flight marker: the request is on the wire, its response not yet read.
_UNRESOLVED = object()


class PendingReply:
    """A handle for one pipelined request (from :meth:`BeliefClient.submit`).

    :meth:`result` blocks until *this* request's response arrives — frames
    for other in-flight requests read along the way are buffered and resolve
    their own pendings. A reply can be resolved exactly once; a connection
    failure resolves every in-flight reply with :class:`ConnectionLost`.
    """

    __slots__ = ("_client", "id")

    def __init__(self, client: "BeliefClient", request_id: int) -> None:
        self._client = client
        self.id = request_id

    def result(self) -> Any:
        """Block until the response arrives; return its result (or raise)."""
        return self._client._resolve(self.id)

    def done(self) -> bool:
        """True when the response (or a connection failure) has arrived."""
        return self._client._peek_done(self.id)

    def __repr__(self) -> str:
        state = "done" if self.done() else "in flight"
        return f"<PendingReply #{self.id} ({state})>"


class BeliefClient:
    """A synchronous connection to a :class:`~repro.server.server.BeliefServer`.

    Parameters
    ----------
    host / port:
        Server address.
    connect_retries / retry_delay:
        The initial connect is retried (helpful when the server is still
        binding); call latency is not — a lost connection raises
        :class:`ConnectionLost`.
    timeout:
        Socket timeout in seconds for connect and each response.
    auto_reconnect:
        Recovery path for server restarts. When True, a call that finds the
        connection gone makes **one bounded reconnect attempt** (a single
        fresh TCP connect, after which :attr:`on_reconnect` — if set — may
        re-establish session state) before the request is sent; a send
        failure likewise retries once on a fresh connection. A call whose
        request was already on the wire when the connection died is *never*
        retried — the server may have applied it — so that call still
        raises :class:`ConnectionLost`, and the *next* call reconnects.
        Explicit :meth:`close` always wins: a client closed by its owner
        stays closed. Default False (a lost connection is terminal, the
        pre-durability behavior).
    max_inflight:
        Cap on responses outstanding on the wire. At the cap,
        :meth:`submit` first *reads* (buffering responses for their
        pending replies) before sending — without this, a large enough
        un-resolved window fills both sockets' buffers: the server blocks
        sending responses nobody reads, stops reading requests, and the
        client's blocked send would misread a healthy connection as dead
        after the socket timeout.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 5433,
        connect_retries: int = 10,
        retry_delay: float = 0.05,
        timeout: float = 30.0,
        auto_reconnect: bool = False,
        max_inflight: int = 64,
        max_frame_bytes: int | None = None,
        wire: str = "auto",
    ) -> None:
        self.host = host
        self.port = port
        self.wire = binproto.check_wire_mode(wire)
        self.max_frame_bytes = (
            protocol.MAX_FRAME_BYTES if max_frame_bytes is None
            else int(max_frame_bytes)
        )
        self.timeout = timeout
        self.auto_reconnect = auto_reconnect
        self.max_inflight = max(1, max_inflight)
        # Wire codec state: every connection starts on the JSON floor and
        # the first submit on it sends a ``hello`` (deferred, not done at
        # connect time, so connect-time server errors — e.g. an admission
        # refusal answering the first frame — still surface on the first
        # *call*, exactly as they do for a never-negotiating client).
        self._codec: Any = binproto.JSON_CODEC
        self._negotiate_pending = False
        #: Called with this client after a successful reconnect, before the
        #: pending request is resent — the hook for session re-establishment
        #: (login, default path); see :class:`repro.api.RemoteConnection`.
        self.on_reconnect: Any = None
        # Reentrant: on_reconnect callbacks issue their own calls while the
        # frame lock is held by the reconnecting call.
        self._lock = threading.RLock()
        self._request_id = 0
        #: request id -> _UNRESOLVED | Response | Exception. Insertion order
        #: is submission order; a dead connection fails every entry.
        self._inflight: dict[int, Any] = {}
        self._sock: socket.socket | None = None
        self._user_closed = False
        self._reconnecting = False
        self._connect(connect_retries, retry_delay)

    def _connect(self, retries: int, delay: float) -> None:
        last: Exception | None = None
        for attempt in range(max(1, retries)):
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                # A fresh connection always restarts on the JSON floor —
                # a reconnect to a different (or downgraded, JSON-only)
                # server re-negotiates from scratch instead of assuming
                # the old connection's codec.
                self._codec = binproto.JSON_CODEC
                self._negotiate_pending = self.wire != "json"
                return
            except OSError as exc:
                last = exc
                if attempt + 1 < retries:
                    time.sleep(delay)
        raise ConnectionLost(
            f"could not connect to {self.host}:{self.port} "
            f"after {max(1, retries)} attempts: {last}"
        )

    def _negotiate_locked(self) -> None:
        """Send ``hello`` and switch codecs if the server takes the offer.

        Must hold the lock, with an empty pipeline (it runs before the
        first real request of a connection, which is the only moment both
        are guaranteed). A pre-hello server answers with its normal
        "unknown operation" error — that is the stay-on-JSON signal, not
        a failure. Any *other* error (an admission refusal, for instance)
        re-raises typed, exactly as it would have for the first real
        request of a never-negotiating client.
        """
        self._negotiate_pending = False
        assert self._sock is not None
        self._request_id += 1
        request = Request(
            id=self._request_id, op=binproto.HELLO_OP,
            params={
                "codecs": binproto.client_offer(self.wire),
                "version": binproto.VERSION,
            },
        )
        try:
            self._codec.write(
                self._sock, request.to_wire(), self.max_frame_bytes
            )
            payload = self._codec.read(self._sock, self.max_frame_bytes)
        except (OSError, ProtocolError) as exc:
            self._drop(exc if isinstance(exc, ProtocolError) else None)
            raise ConnectionLost(
                f"connection to server lost during wire negotiation: {exc}"
            ) from exc
        if payload is None:
            self._drop()
            raise ConnectionLost(
                "server closed the connection during wire negotiation"
            )
        try:
            response = Response.from_wire(payload)
        except ProtocolError as exc:
            self._drop(exc)
            raise
        if response.id != request.id:
            self._drop()
            raise ProtocolError(
                f"hello response id {response.id} does not match the "
                f"hello request id {request.id}"
            )
        if not response.ok:
            error = response.error or {}
            if "unknown operation" in error.get("message", ""):
                # A server that predates the handshake: the JSON floor is
                # the negotiated outcome, unless the caller demanded
                # binary outright.
                if self.wire == "binary":
                    self._drop()
                    raise ProtocolError(
                        "wire='binary' requested but the server does not "
                        "speak the hello handshake"
                    )
                return
            self._unwrap(response)  # raises the travelled error, typed
            raise ProtocolError(  # pragma: no cover — unwrap always raises
                "hello error response did not unwrap"
            )
        result = response.result if isinstance(response.result, dict) else {}
        chosen = result.get("codec", binproto.CODEC_JSON)
        if chosen == binproto.CODEC_BINARY:
            self._codec = binproto.BinaryCodec()
        elif chosen == binproto.CODEC_JSON:
            if self.wire == "binary":
                self._drop()
                raise ProtocolError(
                    "wire='binary' requested but the server negotiated "
                    "the connection down to JSON"
                )
        else:
            # The server picked something this client never offered; the
            # next frame would be unreadable. Fail closed.
            self._drop()
            raise ProtocolError(
                f"server chose an unknown wire codec {chosen!r}"
            )

    # -------------------------------------------------------------- plumbing

    def call(self, op: str, **params: Any) -> Any:
        """Send one request and return the server's result (or raise)."""
        return self.submit(op, **params).result()

    def submit(self, op: str, **params: Any) -> PendingReply:
        """Pipeline one request: send it and return without waiting.

        The returned :class:`PendingReply` resolves to the server's result
        (or raises the travelled error). Up to ``max_inflight`` responses
        may be outstanding on the wire (past that, submit drains responses
        into the reply buffer first); responses correlate by request id,
        so out-of-order arrival (the async server) resolves the right
        replies. Do not pipeline a request that depends on the *effect* of
        an earlier in-flight one — resolve the earlier reply first (see
        the protocol module docstring).
        """
        with self._lock:
            reconnected = False
            if self._sock is None:
                if self._user_closed:
                    raise ConnectionLost("client is closed")
                if not self.auto_reconnect or self._reconnecting:
                    raise ConnectionLost(
                        "connection to server lost "
                        "(auto_reconnect disabled; create a new client)"
                    )
                if _names_session_state(op, params):
                    # A fresh session cannot know the old connection's
                    # prepared-statement/cursor handles or its open
                    # transaction; reconnecting just to be told "unknown
                    # statement" / "no transaction" would hide the truth.
                    raise ConnectionLost(
                        "connection to server lost and the request names "
                        "per-session state (a prepared statement, cursor, "
                        "or open transaction) that did not survive it; "
                        "re-establish it after reconnecting"
                    )
                self._reconnect_locked()
                reconnected = True
            if self._negotiate_pending:
                # First traffic on a fresh connection: run the hello
                # exchange before any real request so the codec can never
                # change underneath an in-flight pipeline.
                self._negotiate_locked()
            # Window bound: past max_inflight unread responses, drain the
            # socket into the reply buffer before sending more — keeping
            # both sides' buffers shallow so a big pipeline cannot wedge
            # the connection (see the max_inflight parameter docs).
            while (
                self._sock is not None
                and sum(
                    1 for state in self._inflight.values()
                    if state is _UNRESOLVED
                ) >= self.max_inflight
            ):
                self._read_one_locked()
            if self._sock is None:
                # The drain hit a dead connection; every pending reply has
                # been failed already — this request was never sent.
                raise ConnectionLost(
                    "connection to server lost while draining the "
                    "pipeline; this request was not sent"
                )
            self._request_id += 1
            request = Request(id=self._request_id, op=op, params=params)
            try:
                self._codec.write(
                    self._sock, request.to_wire(), self.max_frame_bytes
                )
            except (ProtocolError, FrameTooLargeError):
                # A LOCAL encoding failure (unserializable parameter, frame
                # over the ceiling): encode_frame raised before a single
                # byte reached the wire, so the connection — and any
                # pipelined requests on it — are untouched. Surface the
                # real error instead of tearing the session down.
                raise
            except OSError as exc:
                # The connection died under the send. The server cannot have
                # seen a complete frame, so resending once on a fresh
                # connection is safe (unlike a lost *response*) — except
                # when the request names per-session server state (handles
                # died with the session), or when other requests were in
                # flight (their responses are gone; the pipeline must fail
                # as a unit, not resend its tail behind their backs).
                had_inflight = bool(self._inflight)
                self._drop()
                if (
                    not self.auto_reconnect
                    or self._reconnecting
                    or reconnected  # this call already used its one attempt
                    or had_inflight
                    or _names_session_state(op, params)
                ):
                    raise ConnectionLost(
                        f"connection to server lost: {exc}"
                    ) from exc
                self._reconnect_locked()
                if self._negotiate_pending:
                    self._negotiate_locked()
                try:
                    self._codec.write(
                        self._sock, request.to_wire(), self.max_frame_bytes
                    )
                except (OSError, ProtocolError) as retry_exc:
                    self._drop()
                    raise ConnectionLost(
                        "send failed again after one reconnect attempt: "
                        f"{retry_exc}"
                    ) from retry_exc
            self._inflight[request.id] = _UNRESOLVED
            return PendingReply(self, request.id)

    @property
    def inflight(self) -> int:
        """How many submitted requests have not been resolved yet."""
        with self._lock:
            return len(self._inflight)

    def _peek_done(self, request_id: int) -> bool:
        with self._lock:
            return self._inflight.get(request_id) is not _UNRESOLVED

    def _resolve(self, request_id: int) -> Any:
        """Block until ``request_id``'s response arrives; consume it."""
        with self._lock:
            while True:
                if request_id not in self._inflight:
                    raise BeliefDBError(
                        f"request {request_id} is not in flight "
                        "(already resolved, or never submitted here)"
                    )
                state = self._inflight[request_id]
                if state is not _UNRESOLVED:
                    del self._inflight[request_id]
                    break
                self._read_one_locked()
        if isinstance(state, BaseException):
            raise state
        return self._unwrap(state)

    def _read_one_locked(self) -> None:
        """Read one frame and route it to its pending request.

        Must hold the lock. Any failure — I/O error, clean EOF with
        requests outstanding, malformed frame, or an id that matches no
        in-flight request — drains **every** pending request with the
        failure and drops the socket: after any of those the stream cannot
        be trusted to pair responses with requests.
        """
        if self._sock is None:
            # A racing resolver already tore the connection down but our
            # request predates the drain (defensive; _drop marks all).
            self._fail_inflight(
                ConnectionLost(self._response_lost("connection is gone"))
            )
            return
        try:
            payload = self._codec.read(self._sock, self.max_frame_bytes)
        except (OSError, ProtocolError) as exc:
            self._drop(ConnectionLost(
                self._response_lost(f"connection to server lost: {exc}")
            ))
            return
        if payload is None:
            self._drop(ConnectionLost(
                self._response_lost("server closed the connection")
            ))
            return
        try:
            response = Response.from_wire(payload)
        except ProtocolError as exc:
            self._drop(exc)  # malformed response: stream cannot be trusted
            return
        if self._inflight.get(response.id) is not _UNRESOLVED:
            # Unknown or already-resolved id: the stream is desynchronized;
            # keeping the socket would pair future responses with the wrong
            # requests. Fail closed.
            self._drop(ProtocolError(
                f"response id {response.id} does not match any in-flight "
                "request"
            ))
            return
        self._inflight[response.id] = response

    _unwrap = staticmethod(unwrap_response)

    def _fail_inflight(self, exc: BaseException) -> None:
        """Resolve every in-flight request with ``exc`` (the pipeline drain).

        Must hold the lock. Called whenever the connection dies or is torn
        down on purpose: a response that never arrived is *never* silently
        retried, so every pending reply surfaces the loss explicitly.
        """
        for request_id, state in self._inflight.items():
            if state is _UNRESOLVED:
                self._inflight[request_id] = exc

    def _response_lost(self, detail: str) -> str:
        """Error text for a request whose response never arrived."""
        message = (
            f"{detail}; the in-flight request may or may not have been "
            "applied"
        )
        if self.auto_reconnect:
            message += "; the next call will attempt to reconnect"
        return message

    def reconnect(self) -> None:
        """Make one bounded reconnect attempt (then session re-establishment).

        Any requests still in flight are **drained first** — each pending
        reply resolves to :class:`ConnectionLost` — because their responses
        belong to the old connection and can never arrive on the new one.
        Raises :class:`ConnectionLost` when the single fresh connect fails,
        or when this client was explicitly closed by its owner.
        """
        with self._lock:
            if self._user_closed:
                raise ConnectionLost("client is closed")
            self._reconnect_locked()

    def _reconnect_locked(self) -> None:
        # Explicit in-flight drain: a reconnect must never leave pendings
        # waiting for responses the old connection took with it, and the
        # fresh connection must start with an empty pipeline (its response
        # ids would otherwise collide with orphaned ones).
        self._drop(ConnectionLost(self._response_lost(
            "connection was re-established underneath this request"
        )))
        self._reconnecting = True
        try:
            try:
                self._connect(retries=1, delay=0.0)
            except ConnectionLost as exc:
                raise ConnectionLost(
                    f"one reconnect attempt to {self.host}:{self.port} "
                    f"failed: {exc}"
                ) from exc
            if self.on_reconnect is not None:
                # Let the owner restore session state (login/default path)
                # before the interrupted workload resumes.
                self.on_reconnect(self)
        finally:
            self._reconnecting = False

    def _drop(self, cause: BaseException | None = None) -> None:
        """Tear down the socket without marking the client user-closed.

        Every in-flight request is drained with ``cause`` (or a generic
        :class:`ConnectionLost`) — nothing may stay parked waiting for a
        response that can no longer arrive.
        """
        if self._inflight:
            self._fail_inflight(cause if cause is not None else ConnectionLost(
                self._response_lost("connection to server lost")
            ))
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._user_closed = True
        # Close the socket BEFORE taking the lock: another thread may hold
        # the lock blocked in a read, and closing the socket underneath it
        # is what unblocks that read (it then drains the pipeline itself).
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        with self._lock:
            # A concurrent reconnect may have swapped in a fresh socket.
            if self._sock is not None and self._sock is not sock:
                try:
                    self._sock.close()
                except OSError:
                    pass
            self._sock = None
            self._fail_inflight(ConnectionLost(
                "client was closed with this request still in flight; its "
                "outcome is unknown"
            ))

    def __enter__(self) -> "BeliefClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """No socket and no way to get one back.

        An ``auto_reconnect`` client whose connection dropped is *not*
        closed — the next call makes its bounded reconnect attempt — unless
        the owner explicitly called :meth:`close`.
        """
        if self._sock is not None:
            return False
        return self._user_closed or not self.auto_reconnect

    # ------------------------------------------------------------------- ops

    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def login(self, user: Any, create: bool = False) -> dict[str, Any]:
        """Authenticate as ``user`` (name or uid); sets the default path."""
        return self.call("login", user=user, create=create)

    def logout(self) -> dict[str, Any]:
        return self.call("logout")

    def whoami(self) -> dict[str, Any]:
        return self.call("whoami")

    def set_path(self, path: Sequence[Any]) -> dict[str, Any]:
        return self.call("set_path", path=list(path))

    def add_user(self, name: str | None = None) -> Any:
        return self.call("add_user", name=name)

    def users(self) -> dict[Any, str]:
        return {uid: name for uid, name in self.call("users")}

    def insert(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        """Insert a belief statement; ``path=None`` means the session world."""
        return self.call(
            "insert", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    def delete(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        return self.call(
            "delete", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    def dispute(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
    ) -> bool:
        """Insert a negative belief — "I do not believe this tuple"."""
        return self.insert(relation, values, path=path, sign="-")

    def execute(self, sql: str) -> list[list[Any]] | bool | int:
        """Run one BeliefSQL statement (session default path applies)."""
        return self.call("execute", sql=sql)

    # ------------------------------------------------- prepared statements

    def prepare(self, sql: str) -> RemoteStatement:
        """Prepare a statement server-side; returns a reusable handle."""
        info = self.call("prepare", sql=sql)
        return RemoteStatement(
            id=info["stmt"],
            kind=info["kind"],
            param_count=info["param_count"],
            columns=tuple(info["columns"]),
        )

    def execute_prepared(
        self,
        statement: RemoteStatement | str,
        params: Sequence[Any] = (),
        max_rows: int | None = None,
    ) -> dict[str, Any]:
        """Execute a prepared handle (or one-shot SQL) with ``?`` parameters.

        Returns the structured result payload: ``kind``, ``columns``,
        ``rowcount``, ``status``, ``elapsed_ms``, the first page of ``rows``,
        and — for large results — a ``cursor`` to :meth:`fetch` the rest.
        """
        call_params: dict[str, Any] = {"params": list(params)}
        if isinstance(statement, RemoteStatement):
            call_params["stmt"] = statement.id
        else:
            call_params["sql"] = statement
        if max_rows is not None:
            call_params["max_rows"] = max_rows
        return self.call("execute_prepared", **call_params)

    def execute_batch(
        self,
        statement: RemoteStatement | str,
        param_rows: Sequence[Sequence[Any]],
        chunk_rows: int = 256,
    ) -> dict[str, Any]:
        """Bind one prepared DML statement to many parameter vectors at once.

        The whole batch costs one round trip, one server write-lock
        acquisition, and (on durable servers) one WAL fsync — the fast path
        for bulk curation. Batches larger than ``chunk_rows`` are split into
        sequential chunks so no single frame approaches the 1 MiB wire
        ceiling; a strict-mode rejection stops at the failing chunk (earlier
        chunks stay applied, exactly like earlier statements would).

        Returns the aggregate result payload: ``kind``, ``columns``,
        ``rowcount`` (summed), ``status``, ``elapsed_ms``.
        """
        call_params = batch_statement_params(statement)
        payload: dict[str, Any] | None = None
        chunk_bytes = self.max_frame_bytes // 3
        for chunk in iter_batch_chunks(param_rows, chunk_rows, chunk_bytes):
            payload = merge_batch_payload(payload, self.call(
                "execute_batch", param_rows=chunk, **call_params,
            ))
        assert payload is not None
        return payload

    # --------------------------------------------------------- transactions

    def begin(self) -> dict[str, Any]:
        """Open a transaction on this session: DML stages until commit.

        Do **not** pipeline requests while a transaction is open — every
        in-transaction request depends on the session's transaction state;
        await each response (``call``, not ``submit``) before the next.
        """
        return self.call("begin")

    def commit(self) -> dict[str, Any]:
        """Commit the open transaction atomically; the aggregate payload.

        One server write-lock acquisition and one WAL fsync for the whole
        group; a mid-apply rejection rolls everything back server-side and
        raises :class:`~repro.errors.TransactionAbortedError` here.
        """
        return self.call("commit")

    def rollback(self) -> dict[str, Any]:
        """Discard the open transaction: ``{"discarded": <n statements>}``."""
        return self.call("rollback")

    def close_statement(self, statement: RemoteStatement | int) -> bool:
        stmt_id = statement.id if isinstance(statement, RemoteStatement) else statement
        return bool(self.call("close_statement", stmt=stmt_id)["closed"])

    def fetch(self, cursor_id: int, n: int | None = None) -> dict[str, Any]:
        """Next page of a paged result: ``{"rows": [...], "has_more": bool}``."""
        if n is None:
            return self.call("fetch", cursor=cursor_id)
        return self.call("fetch", cursor=cursor_id, n=n)

    def drain(self, payload: dict[str, Any]) -> list[list[Any]]:
        """All rows of an ``execute_prepared`` payload, fetching the paged
        tail from the server's cursor when the first page was not the end."""
        rows = list(payload["rows"])
        cursor_id = payload.get("cursor")
        has_more = bool(payload.get("has_more"))
        while has_more and cursor_id is not None:
            page = self.fetch(cursor_id)
            rows.extend(page["rows"])
            has_more = bool(page["has_more"])
        return rows

    def close_cursor(self, cursor_id: int) -> bool:
        return bool(self.call("close_cursor", cursor=cursor_id)["closed"])

    def query(self, bcq: str) -> list[list[Any]]:
        return self.call("query", bcq=bcq)

    def believes(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
    ) -> bool:
        return self.call(
            "believes", relation=relation, values=list(values),
            path=None if path is None else list(path), sign=sign,
        )

    def world(self, path: Sequence[Any] | None = None) -> dict[str, Any]:
        return self.call("world", path=None if path is None else list(path))

    def worlds(self) -> list[dict[str, Any]]:
        return self.call("worlds")

    def stats(self) -> dict[str, Any]:
        return self.call("stats")

    def metrics(self) -> dict[str, Any]:
        """The server's metric families + slow-op trace, JSON-plain.

        Served without the database lock and exempt from admission-control
        shedding, so it answers even when the server is overloaded.
        """
        return self.call("metrics")

    def kripke(self) -> str:
        return self.call("kripke")

    def describe(self) -> str:
        return self.call("describe")

    # --------------------------------------------------- lifecycle & audit

    def lifecycle_propose(
        self,
        relation: str,
        values: Sequence[Any],
        path: Sequence[Any] | None = None,
        sign: str = "+",
        *,
        actor: Any = None,
        confidence: float = 1.0,
        decay: str = "none",
        derived_from: Sequence[Any] = (),
    ) -> dict[str, Any]:
        """Start lifecycle tracking for one explicit statement (PROPOSED)."""
        return self.call(
            "lifecycle", action="propose", relation=relation,
            values=list(values),
            path=None if path is None else list(path), sign=sign,
            actor=actor, confidence=confidence, decay=decay,
            derived_from=list(derived_from),
        )

    def lifecycle_transition(
        self,
        belief: str,
        to: str,
        *,
        expect: str | None = None,
        reason: str | None = None,
        actor: Any = None,
        path: Sequence[Any] | None = None,
    ) -> dict[str, Any]:
        """Move a belief to ``to``; ``expect`` makes it a CAS that raises
        LifecycleConflictError when another curator got there first.
        ``path`` is routing-only (which world the belief lives in) and
        matters against a shard router."""
        return self.call(
            "lifecycle", action="transition", belief=belief, to=to,
            expect=expect, reason=reason, actor=actor,
            path=None if path is None else list(path),
        )

    def lifecycle_decay_sweep(self, *, actor: Any = None) -> dict[str, Any]:
        """One decay sweep over every tracked belief; ``{"swept", "changed"}``."""
        return self.call("lifecycle", action="decay_sweep", actor=actor)

    def audit_log(
        self, belief: str | None = None, limit: int | None = None
    ) -> list[dict[str, Any]]:
        """The append-only audit history, oldest first."""
        return self.call("audit", kind="log", belief=belief, limit=limit)

    def lifecycle_get(self, belief: str) -> dict[str, Any] | None:
        return self.call("audit", kind="record", belief=belief)

    def lifecycle_queue(
        self,
        path: Sequence[Any] | None = None,
        status: str | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """The curation review queue: tracked beliefs, filtered, oldest first."""
        return self.call(
            "audit", kind="queue",
            path=None if path is None else list(path),
            status=status, limit=limit,
        )

    def provenance(self, belief: str) -> dict[str, Any]:
        return self.call("audit", kind="provenance", belief=belief)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<BeliefClient {self.host}:{self.port} ({state})>"

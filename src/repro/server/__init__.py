"""Network serving layer: many users, one shared belief database.

The paper's motivating deployments (NatureMapping community databases,
message boards) are multi-user: scientists concurrently report sightings,
agree with, and dispute each other's tuples. This package turns the
single-process :class:`~repro.bdms.bdms.BeliefDBMS` into a network service:

* :mod:`repro.server.protocol` — a length-prefixed JSON wire protocol
  (request / response / error frames) that fails closed on oversized or
  malformed input;
* :mod:`repro.server.binproto` — the negotiated binary-v1 frame codec
  (struct-packed header, compact tagged values, JSON escape hatch) and
  the ``hello`` handshake that upgrades a connection onto it; JSON stays
  the compatibility floor — clients that never send a hello are served
  unchanged (``docs/wire-protocol.md``);
* :mod:`repro.server.session` — per-connection sessions tracking the
  authenticated user and a default belief path, so a plain
  ``insert into Sightings ...`` is implicitly annotated with the session
  user (the paper's "users see their own belief world" model);
* :mod:`repro.server.server` — a threaded socket server multiplexing many
  clients over one shared BDMS (reads serve lock-free from pinned MVCC
  versions, writes serialize on an exclusive lock — ``docs/concurrency
  .md``), with ``prepare``/``execute_prepared``/``execute_batch`` ops
  (``?`` parameters, structured result payloads) and ``fetch`` paging for
  large result sets;
* :mod:`repro.server.async_server` — the pipelined asyncio server core:
  same ops, same locking discipline, same sessions, but each connection
  keeps up to ``max_inflight`` requests executing concurrently and
  responses return out of order, correlated by request id;
* :mod:`repro.server.client` — the blocking client library, now with
  :meth:`~repro.server.client.BeliefClient.submit` pipelining and batched
  :meth:`~repro.server.client.BeliefClient.execute_batch`;
* :mod:`repro.server.async_client` — a natively pipelined asyncio client.

Most applications should use :func:`repro.api.connect` instead of the raw
client — it wraps this layer in DB-API-style connections and cursors.

Quickstart::

    from repro import sightings_schema
    from repro.bdms.bdms import BeliefDBMS
    from repro.server import BeliefServer, BeliefClient

    with BeliefServer(BeliefDBMS(sightings_schema())) as server:
        with BeliefClient(*server.address) as carol:
            carol.add_user("Carol")
            carol.login("Carol")
            carol.execute("insert into Sightings values "
                          "('s1','Carol','bald eagle','6-14-08','Lake Forest')")
"""

from repro.server.async_client import AsyncBeliefClient
from repro.server.async_server import AsyncBeliefServer
from repro.server.binproto import (
    CODEC_BINARY,
    CODEC_JSON,
    HELLO_OP,
    WIRE_MODES,
    BinaryCodec,
    JsonCodec,
    codec_for,
)
from repro.server.client import (
    BeliefClient,
    PendingReply,
    RemoteError,
    RemoteStatement,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    Request,
    Response,
    decode_frame,
    encode_frame,
    read_frame,
    read_frame_async,
    write_frame,
    write_frame_async,
)
from repro.server.server import BeliefServer, ReadWriteLock
from repro.server.session import ClientSession

__all__ = [
    "AsyncBeliefClient",
    "AsyncBeliefServer",
    "BeliefClient",
    "BeliefServer",
    "BinaryCodec",
    "CODEC_BINARY",
    "CODEC_JSON",
    "ClientSession",
    "HELLO_OP",
    "JsonCodec",
    "MAX_FRAME_BYTES",
    "PendingReply",
    "ProtocolError",
    "ReadWriteLock",
    "RemoteError",
    "RemoteStatement",
    "Request",
    "Response",
    "WIRE_MODES",
    "codec_for",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "write_frame_async",
]

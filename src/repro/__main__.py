"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``repl``     — interactive BeliefSQL shell on the running-example schema;
* ``demo``     — replay the paper's Sect. 2 running example and print the
  worlds, queries, and Kripke structure (same as examples/quickstart.py);
* ``overhead`` — a quick storage-overhead measurement (mini Table 1 cell).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.bdms.repl import main as repl_main

    repl_main()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    example = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples" / "quickstart.py"
    )
    if example.exists():
        spec = importlib.util.spec_from_file_location("quickstart", example)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    print("examples/quickstart.py not found (installed without examples)")
    return 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.bench.overhead import measure_overhead

    result = measure_overhead(
        args.n, args.users, args.participation,
        tuple(float(x) for x in args.depths.split(",")),
        repeats=args.repeats,
    )
    print(
        f"n={result.n_annotations} m={result.n_users} "
        f"{result.participation} {result.depth_label}: "
        f"|R*|/n = {result.overhead_mean:.1f} "
        f"(±{result.overhead_stdev:.1f}, {result.worlds_mean:.0f} worlds)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Belief database reproduction (VLDB 2009) utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("repl", help="interactive BeliefSQL shell")
    sub.add_parser("demo", help="replay the paper's running example")
    overhead = sub.add_parser("overhead", help="measure |R*|/n for one config")
    overhead.add_argument("--n", type=int, default=500)
    overhead.add_argument("--users", type=int, default=10)
    overhead.add_argument(
        "--participation", choices=("uniform", "zipf", "geometric"),
        default="zipf",
    )
    overhead.add_argument("--depths", default="0.334,0.333,0.333")
    overhead.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)
    handler = {
        "repl": _cmd_repl,
        "demo": _cmd_demo,
        "overhead": _cmd_overhead,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``repl``     — interactive BeliefSQL shell on the running-example schema;
* ``demo``     — replay the paper's Sect. 2 running example and print the
  worlds, queries, and Kripke structure (same as examples/quickstart.py);
* ``overhead`` — a quick storage-overhead measurement (mini Table 1 cell);
* ``serve``    — run the multi-user belief server on a TCP port;
* ``connect``  — interactive shell against a running belief server.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.bdms.repl import main as repl_main

    repl_main()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    example = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples" / "quickstart.py"
    )
    if example.exists():
        spec = importlib.util.spec_from_file_location("quickstart", example)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    print("examples/quickstart.py not found (installed without examples)")
    return 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.bench.overhead import measure_overhead

    result = measure_overhead(
        args.n, args.users, args.participation,
        tuple(float(x) for x in args.depths.split(",")),
        repeats=args.repeats,
    )
    print(
        f"n={result.n_annotations} m={result.n_users} "
        f"{result.participation} {result.depth_label}: "
        f"|R*|/n = {result.overhead_mean:.1f} "
        f"(±{result.overhead_stdev:.1f}, {result.worlds_mean:.0f} worlds)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.bdms.bdms import BeliefDBMS
    from repro.core.schema import experiment_schema, sightings_schema
    from repro.errors import BeliefDBError
    from repro.server import BeliefServer

    schema = (
        experiment_schema() if args.schema == "experiment"
        else sightings_schema()
    )
    durability = None
    if args.data_dir is not None:
        from repro.durability import DurabilityManager

        durability = DurabilityManager(args.data_dir, sync=args.wal_sync)
    db = BeliefDBMS(
        schema, backend=args.backend, strict=False, durability=durability
    )
    if durability is not None:
        report = durability.last_recovery
        assert report is not None
        print(
            f"recovered {args.data_dir}: snapshot seq {report.snapshot_seq} "
            f"({report.snapshot_statements} statements) + "
            f"{report.wal_records} WAL records "
            f"in {report.elapsed_ms:.0f} ms", flush=True,
        )
    checkpoint_interval = (
        args.checkpoint_interval if durability is not None else None
    )
    if args.use_async:
        from repro.server.async_server import AsyncBeliefServer

        server: BeliefServer = AsyncBeliefServer(
            db, host=args.host, port=args.port,
            checkpoint_interval=checkpoint_interval,
            max_inflight=args.max_inflight,
        )
        core = f"asyncio pipelined, max-inflight={args.max_inflight}"
    else:
        server = BeliefServer(
            db, host=args.host, port=args.port,
            checkpoint_interval=checkpoint_interval,
        )
        core = "threaded"
    server.start()
    assert server.address is not None
    print(
        f"belief server listening on {server.address[0]}:{server.address[1]} "
        f"(schema={args.schema}, backend={args.backend}, {core}; "
        "Ctrl-C to stop)",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        if durability is not None:
            # A clean shutdown checkpoints so the next start replays
            # nothing — but close() must run even when the checkpoint
            # cannot (e.g. a failed-stop manager after a disk error).
            try:
                db.checkpoint()
            except BeliefDBError as exc:
                print(f"shutdown checkpoint failed: {exc}", file=sys.stderr)
        db.close()
    return 0


def _cmd_connect(args: argparse.Namespace) -> int:
    from repro.bdms.repl import remote_main
    from repro.server.client import ConnectionLost

    try:
        remote_main(args.host, args.port, user=args.user)
    except ConnectionLost as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Belief database reproduction (VLDB 2009) utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("repl", help="interactive BeliefSQL shell")
    sub.add_parser("demo", help="replay the paper's running example")
    overhead = sub.add_parser("overhead", help="measure |R*|/n for one config")
    overhead.add_argument("--n", type=int, default=500)
    overhead.add_argument("--users", type=int, default=10)
    overhead.add_argument(
        "--participation", choices=("uniform", "zipf", "geometric"),
        default="zipf",
    )
    overhead.add_argument("--depths", default="0.334,0.333,0.333")
    overhead.add_argument("--repeats", type=int, default=2)
    serve = sub.add_parser("serve", help="run the multi-user belief server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=5433)
    serve.add_argument(
        "--backend", choices=("engine", "sqlite", "naive", "lazy"),
        default="engine",
    )
    serve.add_argument(
        "--schema", choices=("sightings", "experiment"), default="sightings",
    )
    serve.add_argument(
        "--async", dest="use_async", action="store_true",
        help="run the pipelined asyncio server core instead of the "
             "threaded one (same protocol and semantics; in-flight "
             "requests of one connection execute concurrently)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32, metavar="N",
        help="per-connection cap on concurrently executing pipelined "
             "requests (asyncio core only; default 32)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable mode: recover from DIR on start, WAL every write, "
             "checkpoint in the background",
    )
    serve.add_argument(
        "--wal-sync", choices=("always", "batch", "off"), default="always",
        help="WAL fsync policy (default 'always': an acknowledged write "
             "survives SIGKILL)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=30.0, metavar="SECS",
        help="seconds between background checkpoints in durable mode",
    )
    connect = sub.add_parser("connect", help="shell against a belief server")
    connect.add_argument("--host", default="127.0.0.1")
    connect.add_argument("--port", type=int, default=5433)
    connect.add_argument("--user", default=None,
                         help="log in as this user on connect")
    args = parser.parse_args(argv)
    handler = {
        "repl": _cmd_repl,
        "demo": _cmd_demo,
        "overhead": _cmd_overhead,
        "serve": _cmd_serve,
        "connect": _cmd_connect,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())

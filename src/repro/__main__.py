"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``repl``     — interactive BeliefSQL shell on the running-example schema;
* ``demo``     — replay the paper's Sect. 2 running example and print the
  worlds, queries, and Kripke structure (same as examples/quickstart.py);
* ``overhead`` — a quick storage-overhead measurement (mini Table 1 cell);
* ``serve``    — run the multi-user belief server on a TCP port
  (``--shards N`` runs a partitioned worker fleet behind a router);
* ``connect``  — interactive shell against a running belief server;
* ``stats``    — pretty-print a running server's stats and metrics tables;
* ``shard-status`` — per-shard health/load table from a running router.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_repl(args: argparse.Namespace) -> int:
    from repro.bdms.repl import main as repl_main

    repl_main()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import importlib.util
    import pathlib

    example = (
        pathlib.Path(__file__).resolve().parents[2]
        / "examples" / "quickstart.py"
    )
    if example.exists():
        spec = importlib.util.spec_from_file_location("quickstart", example)
        assert spec is not None and spec.loader is not None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        return 0
    print("examples/quickstart.py not found (installed without examples)")
    return 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.bench.overhead import measure_overhead

    result = measure_overhead(
        args.n, args.users, args.participation,
        tuple(float(x) for x in args.depths.split(",")),
        repeats=args.repeats,
    )
    print(
        f"n={result.n_annotations} m={result.n_users} "
        f"{result.participation} {result.depth_label}: "
        f"|R*|/n = {result.overhead_mean:.1f} "
        f"(±{result.overhead_stdev:.1f}, {result.worlds_mean:.0f} worlds)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.bdms.bdms import BeliefDBMS
    from repro.core.schema import experiment_schema, sightings_schema
    from repro.errors import BeliefDBError
    from repro.server import BeliefServer

    if args.shards > 0:
        return _cmd_serve_sharded(args)
    schema = (
        experiment_schema() if args.schema == "experiment"
        else sightings_schema()
    )
    durability = None
    if args.data_dir is not None:
        from repro.durability import DurabilityManager

        durability = DurabilityManager(args.data_dir, sync=args.wal_sync)
    db = BeliefDBMS(
        schema, backend=args.backend, strict=False, durability=durability
    )
    if durability is not None:
        report = durability.last_recovery
        assert report is not None
        print(
            f"recovered {args.data_dir}: snapshot seq {report.snapshot_seq} "
            f"({report.snapshot_statements} statements) + "
            f"{report.wal_records} WAL records "
            f"in {report.elapsed_ms:.0f} ms", flush=True,
        )
    checkpoint_interval = (
        args.checkpoint_interval if durability is not None else None
    )
    admission = {
        "max_sessions": args.max_sessions,
        "max_inflight_requests": args.max_inflight_requests,
        "slow_op_ms": args.slow_op_ms,
        "max_frame_bytes": args.max_frame_bytes,
        "wire": args.wire,
    }
    if args.use_async:
        from repro.server.async_server import AsyncBeliefServer

        server: BeliefServer = AsyncBeliefServer(
            db, host=args.host, port=args.port,
            checkpoint_interval=checkpoint_interval,
            max_inflight=args.max_inflight,
            **admission,
        )
        core = f"asyncio pipelined, max-inflight={args.max_inflight}"
    else:
        server = BeliefServer(
            db, host=args.host, port=args.port,
            checkpoint_interval=checkpoint_interval,
            **admission,
        )
        core = "threaded"
    server.start()
    assert server.address is not None
    metrics_http = None
    if args.metrics_port is not None:
        from repro.obs.httpexp import start_metrics_server

        metrics_http = start_metrics_server(
            server.metrics, port=args.metrics_port, host=args.host
        )
        print(
            f"metrics exposition on "
            f"http://{metrics_http.address[0]}:{metrics_http.port}/metrics",
            flush=True,
        )
    print(
        f"belief server listening on {server.address[0]}:{server.address[1]} "
        f"(schema={args.schema}, backend={args.backend}, {core}; "
        "Ctrl-C to stop)",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if metrics_http is not None:
            metrics_http.stop()
        server.stop()
        if durability is not None:
            # A clean shutdown checkpoints so the next start replays
            # nothing — but close() must run even when the checkpoint
            # cannot (e.g. a failed-stop manager after a disk error).
            try:
                db.checkpoint()
            except BeliefDBError as exc:
                print(f"shutdown checkpoint failed: {exc}", file=sys.stderr)
        db.close()
    return 0


def _cmd_serve_sharded(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: a worker fleet behind one router port."""
    import time

    from repro.shard import ShardCluster, WorkerSpec

    spec = WorkerSpec(
        schema=args.schema,
        backend=args.backend,
        use_async=args.use_async,
        wal_sync=args.wal_sync,
        checkpoint_interval=(
            args.checkpoint_interval if args.data_dir is not None else None
        ),
        max_inflight=args.max_inflight,
        max_sessions=args.max_sessions,
        max_inflight_requests=args.max_inflight_requests,
        slow_op_ms=args.slow_op_ms,
        max_frame_bytes=args.max_frame_bytes,
        wire=args.wire,
    )
    cluster = ShardCluster(
        args.shards,
        spec=spec,
        worker_kind=args.worker_kind,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        max_sessions=args.max_sessions,
        max_inflight_requests=args.max_inflight_requests,
        slow_op_ms=args.slow_op_ms,
        max_frame_bytes=args.max_frame_bytes,
        wire=args.wire,
    )
    cluster.start()
    assert cluster.address is not None
    metrics_http = None
    if args.metrics_port is not None:
        from repro.obs.httpexp import start_metrics_server

        metrics_http = start_metrics_server(
            cluster.router.metrics, port=args.metrics_port, host=args.host
        )
        print(
            f"metrics exposition on "
            f"http://{metrics_http.address[0]}:{metrics_http.port}/metrics",
            flush=True,
        )
    print(
        f"belief server listening on "
        f"{cluster.address[0]}:{cluster.address[1]} "
        f"(schema={args.schema}, backend={args.backend}, "
        f"sharded: {args.shards} {args.worker_kind} workers; Ctrl-C to stop)",
        flush=True,
    )
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        if metrics_http is not None:
            metrics_http.stop()
        cluster.stop()
    return 0


def _cmd_shard_status(args: argparse.Namespace) -> int:
    """``repro shard-status``: one row per shard from a running router."""
    from repro.bench.harness import format_table
    from repro.errors import BeliefDBError
    from repro.server.client import BeliefClient, ConnectionLost

    try:
        client = BeliefClient(args.host, args.port)
    except (OSError, ConnectionLost) as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    try:
        status = client.call("shard_status")
    except BeliefDBError as exc:
        print(f"error: {exc} (is {args.host}:{args.port} a shard router?)",
              file=sys.stderr)
        return 1
    finally:
        client.close()
    router = status.get("router", {})
    print(
        f"{status['n_shards']} shards ({status['worker_kind']} workers), "
        f"router sessions={router.get('sessions_active', '?')} "
        f"ops={router.get('ops_served', '?')}"
    )
    print(format_table(
        ("shard", "address", "healthy", "epoch", "kind", "pid",
         "restarts", "ops_total"),
        [
            (
                row["shard"],
                ":".join(str(x) for x in row["address"])
                if row["address"] else "-",
                row["healthy"], row["epoch"], row["kind"],
                row["pid"] if row["pid"] is not None else "-",
                row["restarts"], int(row["ops_total"]),
            )
            for row in status["shards"]
        ],
        title="shards",
    ))
    return 0


def _histogram_quantile(buckets: list, q: float) -> float:
    """``histogram_quantile`` over wire-form buckets ``[[le, cum], ...]``.

    Same convention as the server-side histograms (rank = q × count, linear
    interpolation inside the winning bucket), reconstructed client-side from
    the cumulative counts the ``metrics`` op ships.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    rank = min(1.0, max(0.0, q)) * total
    previous_bound, previous_cum = 0.0, 0
    for le, cum in buckets:
        bound = float("inf") if le == "+Inf" else float(le)
        if cum >= rank:
            if bound == float("inf"):
                return previous_bound
            in_bucket = cum - previous_cum
            if in_bucket <= 0:
                return bound
            frac = (rank - previous_cum) / in_bucket
            return previous_bound + (bound - previous_bound) * frac
        previous_bound, previous_cum = bound, cum
    return previous_bound


def _render_stats(stats: dict, metrics: dict) -> str:
    """Pretty-print the stats + metrics ops as aligned text tables."""
    from repro.bench.harness import format_table

    sections: list[str] = []
    server = stats.get("server", {})
    sections.append(format_table(
        ("field", "value"),
        sorted((k, v if v is not None else "-") for k, v in server.items()),
        title="server (fleet totals)" if "shards" in stats else "server",
    ))
    router = stats.get("router")
    if isinstance(router, dict) and router:
        sections.append(format_table(
            ("field", "value"),
            sorted(
                (k, v if v is not None else "-") for k, v in router.items()
            ),
            title="router",
        ))
    shards = stats.get("shards")
    if isinstance(shards, dict) and shards:
        rows = []
        for shard_id in sorted(shards, key=lambda s: (len(s), s)):
            info = shards[shard_id]
            if info.get("unavailable"):
                rows.append((shard_id, "down", "-", "-", "-"))
            else:
                rows.append((
                    shard_id, "up",
                    info.get("sessions_active", 0),
                    info.get("ops_served", 0),
                    info.get("op_errors", 0),
                ))
        sections.append(format_table(
            ("shard", "state", "sessions", "ops", "errors"),
            rows, title="shards",
        ))
    cache = stats.get("statement_cache", {})
    if cache:
        sections.append(format_table(
            ("field", "value"),
            sorted(
                (k, round(v, 4) if isinstance(v, float) else v)
                for k, v in cache.items()
            ),
            title="statement cache",
        ))
    timing = stats.get("statement_timing", {})
    if timing:
        sections.append(format_table(
            ("kind", "count", "total_ms", "p50_ms", "p99_ms"),
            [
                (kind, t["count"], t["total_ms"], t["p50_ms"], t["p99_ms"])
                for kind, t in sorted(timing.items())
            ],
            title="statement timing",
        ))
    families = {f["name"]: f for f in metrics.get("families", [])}
    op_hist = families.get("beliefdb_op_seconds")
    if op_hist is not None and op_hist["samples"]:
        rows = []
        for sample in op_hist["samples"]:
            count = sample["count"]
            if not count:
                continue
            op = sample["labels"].get("op", "?")
            shard = sample["labels"].get("shard")
            if shard is not None:  # router-merged metrics: qualify per shard
                op = f"{op}@{shard}"
            rows.append((
                op,
                count,
                round(sample["sum"] / count * 1000.0, 3),
                round(_histogram_quantile(sample["buckets"], 0.5) * 1000.0, 3),
                round(_histogram_quantile(sample["buckets"], 0.99) * 1000.0, 3),
            ))
        if rows:
            sections.append(format_table(
                ("op", "count", "mean_ms", "p50_ms", "p99_ms"),
                sorted(rows),
                title="wire op latency",
            ))
    slow = metrics.get("slow_ops", [])
    if slow:
        sections.append(format_table(
            ("seq", "op", "elapsed_ms", "peer", "user", "request_id"),
            [
                (r["seq"], r["op"], r["elapsed_ms"], r["peer"],
                 r["user"] if r["user"] is not None else "-",
                 r["request_id"] if r["request_id"] is not None else "-")
                for r in slow[-20:]
            ],
            title=f"slow ops (last {min(len(slow), 20)} of {len(slow)})",
        ))
    return "\n\n".join(sections)


def _cmd_stats(args: argparse.Namespace) -> int:
    import time

    from repro.server.client import BeliefClient, ConnectionLost

    try:
        client = BeliefClient(args.host, args.port)
    except (OSError, ConnectionLost) as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    try:
        while True:
            print(_render_stats(client.stats(), client.metrics()), flush=True)
            if args.watch is None:
                return 0
            time.sleep(args.watch)
            print("\n" + "=" * 72 + "\n", flush=True)
    except KeyboardInterrupt:
        return 0
    except ConnectionLost as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _connected_client(args: argparse.Namespace):
    from repro.server.client import BeliefClient, ConnectionLost

    try:
        return BeliefClient(args.host, args.port)
    except (OSError, ConnectionLost) as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return None


def _format_ts(ts: float | None) -> str:
    import datetime

    if ts is None:
        return "-"
    return datetime.datetime.fromtimestamp(ts).strftime("%Y-%m-%d %H:%M:%S")


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    """Curation from the shell: propose / transition / sweep / queue."""
    from repro.errors import BeliefDBError

    client = _connected_client(args)
    if client is None:
        return 1
    try:
        if args.user:
            client.login(args.user)
        if args.action == "queue":
            views = client.lifecycle_queue(
                path=args.path.split(",") if args.path else None,
                status=args.status, limit=args.limit,
            )
            for v in views:
                print(f"{v['belief']}  {v['status']:<10} "
                      f"conf={v['confidence']:.3f}  {v['relation']}"
                      f"{tuple(v['values'])!r}  "
                      f"updated {_format_ts(v['updated_ts'])}")
            print(f"({len(views)} tracked beliefs)")
        elif args.action == "propose":
            if not args.relation or args.values is None:
                print("error: propose needs --relation and --values",
                      file=sys.stderr)
                return 1
            view = client.lifecycle_propose(
                args.relation, args.values,
                path=args.path.split(",") if args.path else None,
                sign=args.sign, confidence=args.confidence,
                decay=args.decay,
                derived_from=args.derived_from or (),
            )
            print(f"proposed {view['belief']} ({view['status']}, "
                  f"confidence {view['confidence']})")
        elif args.action == "transition":
            if not args.belief or not args.to:
                print("error: transition needs --belief and --to",
                      file=sys.stderr)
                return 1
            view = client.lifecycle_transition(
                args.belief, args.to, expect=args.expect,
                reason=args.reason,
                path=args.path.split(",") if args.path else None,
            )
            print(f"{view['belief']} -> {view['status']}")
        elif args.action == "sweep":
            result = client.lifecycle_decay_sweep()
            print(f"swept {result['swept']} tracked beliefs, "
                  f"{result['changed']} confidences decayed")
        return 0
    except BeliefDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_audit(args: argparse.Namespace) -> int:
    """Inspect the append-only audit history and provenance chains."""
    from repro.errors import BeliefDBError

    client = _connected_client(args)
    if client is None:
        return 1
    try:
        if args.provenance:
            prov = client.provenance(args.provenance)
            for node in prov["chain"]:
                parents = ", ".join(str(p) for p in node["derived_from"])
                print(f"{node['belief']}  {node['status']:<10} "
                      f"conf={node['confidence']:.3f}  {node['relation']}"
                      f"{tuple(node['values'])!r}"
                      + (f"  <- {parents}" if parents else ""))
            return 0
        events = client.audit_log(belief=args.belief, limit=args.limit)
        for e in events:
            what = e["action"]
            if what == "transition":
                detail = f"{e['from']} -> {e['to']}"
                if e.get("reason"):
                    detail += f" ({e['reason']})"
            elif what == "propose":
                detail = (f"{e['relation']}{tuple(e['values'])!r} "
                          f"conf={e['confidence']}")
            else:
                detail = f"swept={e['swept']} changed={e['changed']}"
            belief = e.get("belief") or "-"
            print(f"#{e['seq']:<5} {_format_ts(e['ts'])}  "
                  f"{what:<11} {belief:<14} {detail}")
        print(f"({len(events)} audit events)")
        return 0
    except BeliefDBError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()


def _cmd_connect(args: argparse.Namespace) -> int:
    from repro.bdms.repl import remote_main
    from repro.server.client import ConnectionLost

    try:
        remote_main(args.host, args.port, user=args.user)
    except ConnectionLost as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Belief database reproduction (VLDB 2009) utilities",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("repl", help="interactive BeliefSQL shell")
    sub.add_parser("demo", help="replay the paper's running example")
    overhead = sub.add_parser("overhead", help="measure |R*|/n for one config")
    overhead.add_argument("--n", type=int, default=500)
    overhead.add_argument("--users", type=int, default=10)
    overhead.add_argument(
        "--participation", choices=("uniform", "zipf", "geometric"),
        default="zipf",
    )
    overhead.add_argument("--depths", default="0.334,0.333,0.333")
    overhead.add_argument("--repeats", type=int, default=2)
    serve = sub.add_parser("serve", help="run the multi-user belief server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=5433)
    serve.add_argument(
        "--backend", choices=("engine", "sqlite", "naive", "lazy"),
        default="engine",
    )
    serve.add_argument(
        "--schema", choices=("sightings", "experiment"), default="sightings",
    )
    serve.add_argument(
        "--async", dest="use_async", action="store_true",
        help="run the pipelined asyncio server core instead of the "
             "threaded one (same protocol and semantics; in-flight "
             "requests of one connection execute concurrently)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=32, metavar="N",
        help="per-connection cap on concurrently executing pipelined "
             "requests (asyncio core only; default 32)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable mode: recover from DIR on start, WAL every write, "
             "checkpoint in the background",
    )
    serve.add_argument(
        "--wal-sync", choices=("always", "batch", "off"), default="always",
        help="WAL fsync policy (default 'always': an acknowledged write "
             "survives SIGKILL)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float, default=30.0, metavar="SECS",
        help="seconds between background checkpoints in durable mode",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve Prometheus text exposition over plain HTTP on "
             "this port (GET /metrics; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=None, metavar="N",
        help="admission control: refuse connections beyond N concurrently "
             "active sessions with a SERVER_OVERLOADED error (default: "
             "unlimited)",
    )
    serve.add_argument(
        "--max-inflight-requests", type=int, default=None, metavar="N",
        help="admission control: shed requests (SERVER_OVERLOADED) once N "
             "are already executing server-wide, instead of queueing on "
             "the database lock (default: unlimited)",
    )
    serve.add_argument(
        "--slow-op-ms", type=float, default=250.0, metavar="MS",
        help="trace ops slower than MS into the slow-op ring buffer "
             "(0 traces everything, negative disables; default 250)",
    )
    serve.add_argument(
        "--max-frame-bytes", type=int, default=None, metavar="BYTES",
        help="wire frame ceiling: frames larger than BYTES are refused "
             "with a typed FRAME_TOO_LARGE error (default 1 MiB)",
    )
    serve.add_argument(
        "--wire", choices=("json", "binary", "auto"), default="auto",
        help="frame codec policy: 'auto' (default) offers binary-v1 via "
             "the hello handshake and keeps plain JSON for clients that "
             "never send one; 'json' disables the binary codec entirely; "
             "'binary' still *offers* both but marks intent (clients "
             "choose; JSON remains the compatibility floor)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="sharded mode: run N worker servers partitioned by belief "
             "world behind a router on --port (default 0: single server)",
    )
    serve.add_argument(
        "--worker-kind", choices=("thread", "process"), default="process",
        help="sharded mode: real 'python -m repro serve' subprocesses with "
             "crash isolation and per-shard WAL recovery (default), or "
             "lighter in-process worker threads",
    )
    connect = sub.add_parser("connect", help="shell against a belief server")
    connect.add_argument("--host", default="127.0.0.1")
    connect.add_argument("--port", type=int, default=5433)
    connect.add_argument("--user", default=None,
                         help="log in as this user on connect")
    stats = sub.add_parser(
        "stats", help="pretty-print a running server's stats and metrics"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=5433)
    stats.add_argument(
        "--watch", type=float, default=None, metavar="SECS",
        help="refresh every SECS seconds until Ctrl-C",
    )
    shard_status = sub.add_parser(
        "shard-status",
        help="one-line-per-shard health/load from a running shard router",
    )
    shard_status.add_argument("--host", default="127.0.0.1")
    shard_status.add_argument("--port", type=int, default=5433)
    lifecycle = sub.add_parser(
        "lifecycle",
        help="curate beliefs on a running server: propose, transition, "
             "decay-sweep, or list the review queue",
    )
    lifecycle.add_argument("--host", default="127.0.0.1")
    lifecycle.add_argument("--port", type=int, default=5433)
    lifecycle.add_argument("--user", default=None,
                           help="log in as this curator (actor attribution)")
    lifecycle.add_argument(
        "action", choices=("queue", "propose", "transition", "sweep"),
    )
    lifecycle.add_argument("--path", default=None, metavar="U1,U2",
                           help="belief path as comma-separated users")
    lifecycle.add_argument("--status", default=None,
                           help="queue: filter by status (e.g. CHALLENGED)")
    lifecycle.add_argument("--limit", type=int, default=None)
    lifecycle.add_argument("--relation", default=None,
                           help="propose: the statement's relation")
    lifecycle.add_argument("--values", nargs="*", default=None,
                           help="propose: the statement's values")
    lifecycle.add_argument("--sign", choices=("+", "-"), default="+")
    lifecycle.add_argument("--confidence", type=float, default=1.0)
    lifecycle.add_argument("--decay", default="none", metavar="SPEC",
                           help="'none', 'exponential:<half-life-s>', or "
                                "'linear:<rate-per-s>'")
    lifecycle.add_argument("--derived-from", nargs="*", default=None,
                           metavar="REF",
                           help="propose: parent belief ids and/or users")
    lifecycle.add_argument("--belief", default=None,
                           help="transition: the belief id")
    lifecycle.add_argument("--to", default=None,
                           help="transition: the target status")
    lifecycle.add_argument("--expect", default=None,
                           help="transition: CAS precondition on the "
                                "current status")
    lifecycle.add_argument("--reason", default=None)
    audit = sub.add_parser(
        "audit",
        help="print a running server's append-only lifecycle audit log "
             "(or one belief's provenance chain)",
    )
    audit.add_argument("--host", default="127.0.0.1")
    audit.add_argument("--port", type=int, default=5433)
    audit.add_argument("--belief", default=None,
                       help="only events for this belief id")
    audit.add_argument("--limit", type=int, default=None,
                       help="only the newest N events")
    audit.add_argument("--provenance", default=None, metavar="BELIEF",
                       help="print this belief's derivation chain instead")
    args = parser.parse_args(argv)
    handler = {
        "repl": _cmd_repl,
        "demo": _cmd_demo,
        "overhead": _cmd_overhead,
        "serve": _cmd_serve,
        "connect": _cmd_connect,
        "stats": _cmd_stats,
        "shard-status": _cmd_shard_status,
        "lifecycle": _cmd_lifecycle,
        "audit": _cmd_audit,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the belief database library.

All library-specific errors derive from :class:`BeliefDBError` so that callers
can catch a single base class. The hierarchy mirrors the layers of the system:
schema problems, model-level inconsistencies (violations of the paper's
consistency constraints ``Γ1``/``Γ2``), query-language problems (unsafe or
malformed belief conjunctive queries), BeliefSQL parse errors, and engine-level
errors from the relational substrate.
"""

from __future__ import annotations


class BeliefDBError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(BeliefDBError):
    """A relation, attribute, or tuple does not match the external schema."""


class InvalidBeliefPath(BeliefDBError):
    """A belief path is not in ``Û*`` (e.g. repeats a user in adjacent positions)."""


class InconsistencyError(BeliefDBError):
    """A belief world or belief database violates ``Γ1`` or ``Γ2`` (Prop. 5)."""


class UnknownUserError(BeliefDBError):
    """A belief path refers to a user that is not registered in ``U``."""


class UnknownWorldError(BeliefDBError):
    """An operation refers to a world id that is not in the world registry."""


class QueryError(BeliefDBError):
    """Base class for query-language problems."""


class UnsafeQueryError(QueryError):
    """A belief conjunctive query violates the safety condition of Def. 13."""


class BCQParseError(QueryError):
    """The textual BCQ form could not be parsed."""


class BeliefSQLError(BeliefDBError):
    """Base class for BeliefSQL front-end problems."""


class BeliefSQLSyntaxError(BeliefSQLError):
    """The BeliefSQL statement could not be tokenized or parsed."""


class BeliefSQLCompileError(BeliefSQLError):
    """The BeliefSQL statement parsed but cannot be compiled (bad references)."""


class ParameterBindingError(BeliefSQLError):
    """A ``?``-parameterized statement was executed with the wrong number of
    parameters, or evaluated before its placeholders were bound."""


class EngineError(BeliefDBError):
    """Base class for relational-engine problems."""


class DuplicateKeyError(EngineError):
    """An insert violated a table's declared unique key."""


class UnknownTableError(EngineError):
    """A statement referenced a table that does not exist."""


class UnknownColumnError(EngineError):
    """A statement referenced a column that does not exist."""


class DurabilityError(BeliefDBError):
    """Base class for persistence-layer problems (WAL, snapshots, recovery)."""


class WalCorruptionError(DurabilityError):
    """The write-ahead log is damaged beyond the tolerated torn tail.

    A truncated or CRC-corrupt *final* record is expected after a crash and
    handled silently (the unacknowledged tail is discarded); corruption in
    the middle of the log, a sequence-number gap, or a damaged non-final
    segment means acknowledged history would be lost, so recovery refuses.
    """


class TransactionError(BeliefDBError):
    """Transaction state misuse: ``begin`` inside an open transaction,
    ``commit``/``rollback`` with none active (in explicit-``begin`` mode),
    or an operation that is not allowed while a transaction is open."""


class TransactionAbortedError(TransactionError):
    """An open transaction was aborted instead of committed.

    Raised when a commit fails mid-apply (every already-applied statement
    has been rolled back — the database is exactly as it was before the
    commit), or when the connection carrying an open transaction is lost
    (the staged statements died with the session and are **never** silently
    retried). Begin a fresh transaction and re-stage.
    """


class ServerOverloadedError(BeliefDBError):
    """The server shed this request (or session) under admission control.

    Travels the wire as the structured ``SERVER_OVERLOADED`` error: the
    request was **not** executed — nothing was applied or logged — so the
    client may safely retry after backing off. Raised when the server's
    ``max_sessions`` connection limit or ``max_inflight_requests``
    admission limit is exceeded; shedding immediately (instead of queueing
    on the database lock) is what keeps latency bounded under overload.
    """

    #: Stable machine-readable code clients can match without parsing text.
    code = "SERVER_OVERLOADED"


class FrameTooLargeError(BeliefDBError):
    """A wire frame exceeded the configured ``max_frame_bytes`` ceiling.

    Travels the wire as the structured ``FRAME_TOO_LARGE`` error. On the
    server side an oversized *response* is replaced by this error (the
    connection survives and the request id is answered); an oversized
    *request* within the recoverable window is drained, answered with this
    error, and the connection survives too. Only lengths far beyond the
    ceiling — where the stream cannot be resynchronized safely — still fail
    closed with :class:`~repro.server.protocol.ProtocolError`.
    """

    #: Stable machine-readable code clients can match without parsing text.
    code = "FRAME_TOO_LARGE"


class CrossShardTransactionError(TransactionError):
    """A transaction tried to touch more than one shard.

    Raised by the shard router: the first staged DML pins the transaction to
    the shard that owns its belief world, and any later statement routing to
    a different shard is rejected with the structured ``CROSS_SHARD_TXN``
    error. The offending statement was **not** staged; the transaction
    itself stays open on its pinned shard and may still be committed or
    rolled back.
    """

    #: Stable machine-readable code clients can match without parsing text.
    code = "CROSS_SHARD_TXN"


class ShardUnavailableError(BeliefDBError):
    """The shard that owns the requested belief world is down.

    Raised by the shard router instead of hanging when a worker process has
    crashed and the coordinator has not finished restarting it. Travels the
    wire as the structured ``SHARD_UNAVAILABLE`` error; the request was not
    executed, so the client may safely retry after backing off — acknowledged
    writes on the crashed worker are WAL-durable and survive the restart.
    """

    #: Stable machine-readable code clients can match without parsing text.
    code = "SHARD_UNAVAILABLE"


class RejectedUpdateError(BeliefDBError):
    """An insert/delete on the belief store was rejected (Alg. 4 returned false).

    Raised by the high-level BDMS facade when ``strict`` mode is enabled; the
    lower-level store signals the same condition with a boolean return value,
    matching the paper's Algorithm 4.
    """


class LifecycleError(BeliefDBError):
    """Base class for belief-lifecycle problems: unknown belief or status,
    proposing lifecycle tracking twice for the same belief, a malformed
    decay model, or a lifecycle action inside an open transaction."""


class LifecycleConflictError(LifecycleError):
    """A lifecycle transition lost a race or is not allowed from the
    belief's current status.

    Raised when a compare-and-swap ``expect`` precondition does not match
    the belief's current status (another curator got there first), or when
    the requested transition is not an edge of the status machine from the
    current status. Travels the wire as the structured ``LIFECYCLE_CONFLICT``
    error; nothing was applied or logged, so the loser can re-read the
    belief's current status and decide what to do next.
    """

    #: Stable machine-readable code clients can match without parsing text.
    code = "LIFECYCLE_CONFLICT"

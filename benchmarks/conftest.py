"""Shared benchmark plumbing.

Benchmarks regenerate the paper's evaluation (Sect. 6). Scale knobs:

* ``BELIEFDB_BENCH_N``       — annotations per database (default 1000;
  the paper uses 10,000 — set it to reproduce at full scale)
* ``BELIEFDB_BENCH_REPEATS`` — seeds averaged per cell (default 3; paper: 10)
* ``BELIEFDB_BENCH_USERS``   — the large user count (default 100, as paper)

Experiment tables are printed outside pytest's capture (so they land in the
terminal / tee'd log alongside pytest-benchmark's timing table) and appended
to ``benchmarks/results/experiment_tables.txt`` for the record. The file is
capped: only the newest ``TABLES_KEEP`` timestamped blocks are retained, so
repeated local runs can't grow it without bound.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Machine-readable benchmark numbers, merged across benchmark files. CI
#: uploads this as a workflow artifact and feeds it to
#: ``benchmarks/check_regression.py`` against the committed baseline.
RESULTS_JSON = RESULTS_DIR / "bench_results.json"

TABLES_FILE = RESULTS_DIR / "experiment_tables.txt"

#: Timestamped blocks retained in ``experiment_tables.txt``. A full bench
#: sweep emits a couple dozen tables; 60 keeps roughly the last two sweeps.
TABLES_KEEP = 60


def _rotate_tables(path: pathlib.Path, keep: int) -> None:
    """Drop all but the newest ``keep`` ``[stamp]`` blocks from ``path``.

    Blocks are delimited by lines of the form ``[YYYY-mm-dd HH:MM:SS]``;
    everything between one stamp and the next belongs to the earlier stamp.
    """
    try:
        lines = path.read_text().splitlines(keepends=True)
    except OSError:
        return
    starts = [
        i for i, line in enumerate(lines)
        if line.startswith("[") and line.rstrip().endswith("]")
    ]
    if len(starts) <= keep:
        return
    cut = starts[len(starts) - keep]
    # Stamps are preceded by a blank separator line; keep the cut clean.
    path.write_text("\n" + "".join(lines[cut:]))


@pytest.fixture
def record_json():
    """Merge one section of benchmark numbers into ``bench_results.json``."""

    def _record(section: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        data: dict = {}
        if RESULTS_JSON.exists():
            try:
                data = json.loads(RESULTS_JSON.read_text())
            except ValueError:
                data = {}
        data[section] = payload
        RESULTS_JSON.write_text(json.dumps(data, indent=2, sort_keys=True))

    return _record


@pytest.fixture
def emit(capsys):
    """Print an experiment table past pytest's capture and persist it."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        stamp = time.strftime("%Y-%m-%d %H:%M:%S")
        with open(TABLES_FILE, "a") as sink:
            sink.write(f"\n[{stamp}]\n{text}\n")
        _rotate_tables(TABLES_FILE, TABLES_KEEP)

    return _emit


@pytest.fixture(scope="session")
def bench_scale():
    from repro.bench.harness import bench_n, bench_repeats, bench_users_large

    return {
        "n": bench_n(),
        "repeats": bench_repeats(),
        "users_large": bench_users_large(),
    }

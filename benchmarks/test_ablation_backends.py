"""Ablation: query backends and the selection-pushdown refinement.

Compares the three executable forms of Algorithm 1 on identical queries:

* translated Datalog on the in-memory engine, with pushdown (default);
* the same without pushing sign/constant selections into the T_i tables —
  the paper's literal Algorithm 1, which materializes wider temporaries;
* generated SQL on the SQLite mirror (the paper's RDBMS deployment).

Results must agree everywhere; the pushdown variant should not lose to the
unpushed one.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_n, format_table
from repro.bench.queries import (
    Q3_LOCATION,
    build_experiment_store,
    conflict_query,
    content_query,
    user_query,
)
from repro.query.sql_gen import evaluate_sql
from repro.query.translate import evaluate_translated
from repro.relational.sqlite_backend import SqliteMirror

_STATS: dict[tuple[str, str], float] = {}
_SIZES: dict[str, int] = {}


@pytest.fixture(scope="module")
def store():
    return build_experiment_store(
        n_annotations=max(200, bench_n() // 2), n_users=10, seed=4
    )


@pytest.fixture(scope="module")
def mirror(store):
    m = SqliteMirror()
    m.sync(store.engine)
    yield m
    m.close()


_QUERIES = {
    "q1,2": content_query((1, 2)),
    "q2": conflict_query(),
    "q3": user_query(location=Q3_LOCATION),
}

_BACKENDS = ("datalog+push", "datalog-nopush", "sqlite")


def _run(backend, store, mirror, query):
    if backend == "datalog+push":
        return evaluate_translated(store, query, push_selections=True)
    if backend == "datalog-nopush":
        return evaluate_translated(store, query, push_selections=False)
    return evaluate_sql(store, query, mirror)


@pytest.mark.parametrize("backend", _BACKENDS)
@pytest.mark.parametrize("qname", list(_QUERIES), ids=list(_QUERIES))
def test_backend_query(benchmark, store, mirror, qname, backend):
    query = _QUERIES[qname]
    result = benchmark.pedantic(
        lambda: _run(backend, store, mirror, query),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _STATS[(qname, backend)] = benchmark.stats.stats.mean * 1000
    if qname in _SIZES:
        assert len(result) == _SIZES[qname], (qname, backend)
    else:
        _SIZES[qname] = len(result)


def test_backend_report(benchmark, emit):
    def render() -> str:
        rows = [
            [qname, _SIZES[qname]]
            + [round(_STATS[(qname, b)], 2) for b in _BACKENDS]
            for qname in _QUERIES
        ]
        return format_table(
            ["query", "rows"] + [f"{b} ms" for b in _BACKENDS],
            rows,
            title="Ablation — Algorithm 1 executed three ways "
                  "(identical answers asserted)",
        )

    emit(benchmark(render))
    # Pushdown never loses badly to the unpushed translation.
    for qname in _QUERIES:
        pushed = _STATS[(qname, "datalog+push")]
        unpushed = _STATS[(qname, "datalog-nopush")]
        assert pushed <= unpushed * 1.5, qname

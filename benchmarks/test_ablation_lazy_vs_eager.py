"""Ablation (Sect. 6.3 future work): eager vs. lazy default application.

The paper's dominant open problem is the storage overhead of eagerly
materializing every implied belief, and it proposes applying the default rule
"only during query evaluation" instead. Both modes are implemented here, so
we can measure the tradeoff the authors predicted: the lazy store is
dramatically smaller, but queries pay the closure cost at evaluation time.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_n, format_table
from repro.bench.queries import conflict_query, content_query, user_query
from repro.query.lazy import evaluate_lazy
from repro.query.translate import evaluate_translated
from repro.workload.generator import WorkloadConfig, build_store

_STATS: dict[str, float] = {}


def _config() -> WorkloadConfig:
    return WorkloadConfig(
        n_annotations=max(200, bench_n() // 2),
        n_users=20,
        depth_distribution=(0.5, 0.35, 0.15),
        participation="zipf",
        seed=3,
    )


@pytest.fixture(scope="module")
def eager_store():
    store, _ = build_store(_config(), eager=True)
    return store


@pytest.fixture(scope="module")
def lazy_store():
    store, _ = build_store(_config(), eager=False)
    return store


def test_build_eager(benchmark):
    store = benchmark.pedantic(
        lambda: build_store(_config(), eager=True)[0], rounds=1, iterations=1
    )
    _STATS["eager_size"] = store.total_rows()


def test_build_lazy(benchmark):
    store = benchmark.pedantic(
        lambda: build_store(_config(), eager=False)[0], rounds=1, iterations=1
    )
    _STATS["lazy_size"] = store.total_rows()
    # The whole point: a lazy store is much smaller (O(n+m·worlds) vs the
    # eagerly multiplied defaults).
    assert _STATS["lazy_size"] < _STATS["eager_size"]


_QUERIES = {
    "q1,1": content_query((1,)),
    "q2": conflict_query(),
    "q3": user_query(),
}


@pytest.mark.parametrize("qname", list(_QUERIES), ids=list(_QUERIES))
def test_query_eager(benchmark, eager_store, qname):
    query = _QUERIES[qname]
    result = benchmark.pedantic(
        lambda: evaluate_translated(eager_store, query),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _STATS[f"eager_{qname}_ms"] = benchmark.stats.stats.mean * 1000
    _STATS[f"eager_{qname}_size"] = len(result)


@pytest.mark.parametrize("qname", list(_QUERIES), ids=list(_QUERIES))
def test_query_lazy(benchmark, lazy_store, qname):
    query = _QUERIES[qname]
    result = benchmark.pedantic(
        lambda: evaluate_lazy(lazy_store, query),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _STATS[f"lazy_{qname}_ms"] = benchmark.stats.stats.mean * 1000
    # Same answers in both modes.
    assert len(result) == _STATS[f"eager_{qname}_size"]


def test_lazy_vs_eager_report(benchmark, emit):
    def render() -> str:
        rows = [
            ["|R*| (tuples)",
             int(_STATS["eager_size"]), int(_STATS["lazy_size"]),
             round(_STATS["eager_size"] / _STATS["lazy_size"], 1)],
        ]
        for qname in _QUERIES:
            e = _STATS[f"eager_{qname}_ms"]
            l = _STATS[f"lazy_{qname}_ms"]
            rows.append(
                [f"{qname} (ms)", round(e, 2), round(l, 2),
                 round(l / max(e, 1e-6), 1)]
            )
        return format_table(
            ("metric", "eager", "lazy", "ratio"),
            rows,
            title="Ablation — eager materialization (paper) vs lazy "
                  "query-time defaults (paper's future work, Sect. 6.3)",
        )

    emit(benchmark(render))
    assert _STATS["eager_size"] > _STATS["lazy_size"]

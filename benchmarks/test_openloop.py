"""Open-loop latency under target arrival rates, with and without admission.

Closed-loop throughput benchmarks (test_server_throughput.py) measure how
fast N self-throttling clients can go. This file measures what *latency*
looks like when traffic arrives on its own schedule — the regime where
queueing collapse lives — using :mod:`repro.bench.openloop`:

* **steady** — a calibrated, sustainable arrival rate (half of measured
  single-client capacity) against the threaded server; records p50/p99 to
  ``bench_results.json`` (section ``openloop``) for the CI regression gate.
* **overload** — durable inserts (every ack costs an fsync, so capacity is
  low and deterministic) offered at ~3x measured capacity, twice:

  - *uncapped*: no admission control. The write queue grows for the whole
    run, so the late half's p99 diverges from the early half's — the
    collapse signature the harness exists to expose.
  - *shedding*: ``max_inflight_requests`` set. Excess arrivals are refused
    with ``SERVER_OVERLOADED`` instead of queueing; completed requests keep
    a bounded p99 and the shed count is > 0.

Scale knobs: ``BELIEFDB_BENCH_OPENLOOP_OPS`` (steady-cell requests,
default 240), ``BELIEFDB_BENCH_OVERLOAD_OPS`` (per overload cell,
default 160).
"""

from __future__ import annotations

import os
import tempfile

from repro.bdms.bdms import BeliefDBMS
from repro.bench.openloop import run_open_loop
from repro.core.schema import sightings_schema
from repro.durability import DurabilityManager
from repro.obs.clock import monotonic_s
from repro.server import BeliefClient, BeliefServer

USER = "Carol"

#: Ceiling on the calibrated steady rate — keeps the cell's wall-clock
#: bounded and the arrival spacing well above scheduler jitter.
MAX_STEADY_RATE = 2000.0
MIN_RATE = 50.0


def _steady_ops() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_OPENLOOP_OPS", "240"))


def _overload_ops() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_OVERLOAD_OPS", "160"))


def _db(durability: DurabilityManager | None = None) -> BeliefDBMS:
    db = BeliefDBMS(sightings_schema(), strict=False, durability=durability)
    if USER not in db.users().values():
        db.add_user(USER)
    return db


def _measure_capacity(server, op: str, params: dict, probes: int = 60) -> float:
    """Closed-loop single-client ops/sec — the calibration yardstick."""
    client = BeliefClient(*server.address)
    try:
        client.call(op, **params)  # warm: connection + first-parse costs
        start = monotonic_s()
        for _ in range(probes):
            client.call(op, **params)
        elapsed = max(monotonic_s() - start, 1e-9)
    finally:
        client.close()
    return probes / elapsed


def _insert_op_factory(tag: str):
    """Unique-sid durable inserts; every one takes the write lock + fsync."""

    def make_op(i: int):
        return ("insert", {
            "path": [USER], "relation": "Sightings",
            "values": [f"{tag}-{i}", USER, "osprey", "2008-05-12", "HMP"],
        })

    return make_op


def test_openloop_steady_and_overload(record_json, emit):
    results: dict[str, dict] = {}

    # --- steady: sustainable read-mostly arrival rate -------------------
    with BeliefServer(_db()) as server:
        capacity = _measure_capacity(
            server, "believes",
            {"relation": "Sightings", "values": ["x", USER, "y", "z", "w"],
             "path": [USER]},
        )
        rate = max(MIN_RATE, min(capacity * 0.5, MAX_STEADY_RATE))
        steady = run_open_loop(
            lambda: BeliefClient(*server.address),
            lambda i: ("believes", {
                "relation": "Sightings",
                "values": ["x", USER, "y", "z", "w"], "path": [USER],
            }),
            rate=rate, total_ops=_steady_ops(), workers=4,
        )
    results["steady"] = steady.as_dict() | {"calibrated_capacity": round(capacity, 1)}
    assert steady.errors == 0
    assert steady.shed == 0
    assert steady.completed == steady.offered
    assert not steady.collapsed

    # --- overload: durable inserts at ~3x capacity ----------------------
    def durable_server(tmp: str, **admission):
        return BeliefServer(
            _db(DurabilityManager(tmp)), **admission
        )

    with tempfile.TemporaryDirectory() as tmp:
        with durable_server(os.path.join(tmp, "uncapped")) as server:
            capacity = _measure_capacity(
                server, "insert",
                {"path": [USER], "relation": "Sightings",
                 "values": ["probe", USER, "y", "z", "w"]},
                probes=30,
            )
            overload_rate = max(MIN_RATE, capacity * 3.0)
            uncapped = run_open_loop(
                lambda: BeliefClient(*server.address),
                _insert_op_factory("u"),
                rate=overload_rate, total_ops=_overload_ops(), workers=8,
            )
        with durable_server(
            os.path.join(tmp, "shedding"), max_inflight_requests=2
        ) as server:
            shedding = run_open_loop(
                lambda: BeliefClient(*server.address),
                _insert_op_factory("s"),
                rate=overload_rate, total_ops=_overload_ops(), workers=8,
            )

    results["overload_uncapped"] = uncapped.as_dict() | {
        "calibrated_capacity": round(capacity, 1),
    }
    results["overload_shedding"] = shedding.as_dict()

    # Without admission control every request eventually completes — by
    # queueing, so its p99 carries the whole backlog. With admission
    # control the queue depth is capped: excess arrivals shed instead, and
    # the completed requests' p99 stays bounded. The divergence between
    # the two cells is the structural signal (within-run early/late halves
    # are recorded above but not asserted: at fsync-bounded capacity the
    # queue can saturate before the midpoint).
    assert uncapped.shed == 0
    assert uncapped.errors == 0
    assert uncapped.late_p99_ms >= 0.5 * uncapped.early_p99_ms
    assert shedding.shed > 0
    assert shedding.errors == 0
    assert shedding.completed + shedding.shed == shedding.offered
    assert uncapped.p99_ms > 2.0 * shedding.p99_ms

    record_json("openloop", results)
    lines = ["open-loop latency (ms)",
             f"{'cell':<18} {'rate/s':>8} {'done':>5} {'shed':>5} "
             f"{'p50':>8} {'p99':>8} {'late p99':>9} {'collapsed':>9}"]
    for cell, r in results.items():
        lines.append(
            f"{cell:<18} {r['target_rate']:>8.0f} {r['completed']:>5} "
            f"{r['shed']:>5} {r['p50_ms']:>8.2f} {r['p99_ms']:>8.2f} "
            f"{r['late_p99_ms']:>9.2f} {str(r['collapsed']):>9}"
        )
    emit("\n".join(lines))

"""Table 1 (Sect. 6.1): relative overhead |R*|/n of a belief database.

Paper values, for n = 10,000 annotations:

    Pr[d={0,1,2}]        m=10 Zipf  m=10 unif  m=100 Zipf  m=100 unif
    [1/3, 1/3, 1/3]          31         38         130        1,009
    [0.8, 0.19, 0.01]        27         60          68          162
    [0.199, 0.8, 0.001]       7          6          21           26

We reproduce the grid (scaled by BELIEFDB_BENCH_N) and assert the *shape*:
more users → more overhead; Zipf participation ≤ uniform (within noise); the
mostly-depth-1 skew [0.199,0.8,0.001] is by far the cheapest; the uniform
m=100 flat-depth cell is the most expensive.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_n, bench_repeats, bench_users_large, format_table
from repro.bench.overhead import TABLE1_DEPTH_DISTS, measure_overhead

_RESULTS: dict[tuple[str, int, str], float] = {}


def _cells():
    cells = []
    for label, dist in TABLE1_DEPTH_DISTS.items():
        for m in (10, bench_users_large()):
            for participation in ("zipf", "uniform"):
                cells.append(
                    pytest.param(
                        label, dist, m, participation,
                        id=f"{label}-m{m}-{participation}",
                    )
                )
    return cells


@pytest.mark.parametrize("label, dist, m, participation", _cells())
def test_table1_cell(benchmark, label, dist, m, participation):
    n = bench_n()
    repeats = bench_repeats()

    def build_cell():
        return measure_overhead(
            n, m, participation, dist, depth_label=label, repeats=repeats
        )

    result = benchmark.pedantic(build_cell, rounds=1, iterations=1)
    _RESULTS[(label, m, participation)] = result.overhead_mean
    # Any belief database costs more than its annotations alone.
    assert result.overhead_mean > 1.0
    # ...but stays below the theoretic bound O(m^dmax) (Sect. 5.4).
    assert result.overhead_mean < m ** 2 + len(dist) * m


def test_table1_report(benchmark, emit):
    """Render the grid and check the paper's qualitative orderings."""
    n = bench_n()
    m_large = bench_users_large()

    def render() -> str:
        rows = []
        for label in TABLE1_DEPTH_DISTS:
            row = [label]
            for m in (10, m_large):
                for participation in ("zipf", "uniform"):
                    row.append(round(_RESULTS[(label, m, participation)], 1))
            rows.append(row)
        return format_table(
            ("Pr[d={0,1,2}]", "m=10 zipf", "m=10 unif",
             f"m={m_large} zipf", f"m={m_large} unif"),
            rows,
            title=f"Table 1 reproduction — |R*|/n at n={n} "
                  f"(paper: n=10,000)",
        )

    emit(benchmark(render))

    flat, mid, skewed = TABLE1_DEPTH_DISTS.keys()
    for label in TABLE1_DEPTH_DISTS:
        # More users cost more, for every depth skew (paper: every row grows
        # from the m=10 to the m=100 column).
        assert _RESULTS[(label, m_large, "uniform")] > _RESULTS[(label, 10, "uniform")]
        # Zipf participation concentrates annotations in few users' worlds,
        # never (much) worse than uniform — Table 1's column pattern.
        assert (
            _RESULTS[(label, m_large, "zipf")]
            <= _RESULTS[(label, m_large, "uniform")] * 1.15
        )
    # The mostly-depth-1 skew is the cheapest row, as in the paper.
    for m in (10, m_large):
        for participation in ("zipf", "uniform"):
            assert (
                _RESULTS[(skewed, m, participation)]
                < _RESULTS[(flat, m, participation)]
            )
    # The most expensive cell is uniform participation, flat depths, many
    # users — the paper's 1,009.
    assert max(_RESULTS.values()) == _RESULTS[(flat, m_large, "uniform")]

"""Sharded throughput: 16 clients against ``repro serve --shards 4``.

The sharding ISSUE's acceptance cell: aggregate ops/s of the 4-shard
fleet (process workers, each with its own WAL + fsync discipline) vs the
single-process blocking 16-client baseline, on the durable deployment the
sharding work targets — community curation, where every acknowledged
write costs an fsync.

Three cells, same ``concurrent_trace`` streams, each the median of
``BELIEFDB_BENCH_REPEATS`` runs (fsync timing on shared runners is
noisy; a single sample can swing ±20%):

* **baseline**     — one durable blocking server, the PR 1 discipline:
  every write serializes behind one writer lock and one WAL fsync;
* **s4-blocking**  — the same blocking discipline through the router to
  4 process shards. Writes spread over 4 WALs and 4 writer locks; each
  op pays an extra router hop. On a multi-core box this is the
  horizontal-scaling cell; on a single-core runner the extra hop is pure
  overhead and the cell documents it honestly;
* **s4-batched**   — the fleet's deployment discipline: per-user
  ``SHARD_BATCH_ROWS``-row ``execute_batch`` calls (single-shard by
  construction, so the router forwards each batch whole) amortize the
  router hop, the worker's write lock, and the WAL fsync per batch,
  while single-world selects route to one shard. The batch is double
  the single-server bench's (32 vs 16) because every sharded round trip
  costs two hops. The ≥ 2x acceptance bar is enforced here — at real
  scale only, like the server-throughput bar.

Numbers land in ``bench_results.json`` under ``shard.*`` for the CI
regression gate. Scale knobs: ``BELIEFDB_BENCH_SERVER_OPS``,
``BELIEFDB_BENCH_REPEATS``.
"""

from __future__ import annotations

import os
import statistics
import threading
import time

import pytest

from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import experiment_schema
from repro.durability import DurabilityManager
from repro.server import BeliefClient, BeliefServer
from repro.shard import ShardCluster, WorkerSpec
from repro.workload.generator import concurrent_trace

N_CLIENTS = 16
N_SHARDS = 4
SHARD_BATCH_ROWS = 32

INSERT_SQL = "insert into Sightings values (?,?,?,?,?)"
DISPUTE_SQL = "insert into BELIEF ? not Sightings values (?,?,?,?,?)"

_RESULTS: dict[str, dict[str, float]] = {}


def _ops_per_client() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_SERVER_OPS", "60"))


def _repeats() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_REPEATS", "3"))


def _drive_blocking(client: BeliefClient, ops) -> None:
    for op in ops:
        if op.kind == "insert":
            client.insert(op.relation, list(op.values))
        elif op.kind == "dispute":
            client.dispute(op.relation, list(op.values))
        else:
            client.execute(op.sql)


def _drive_batched(client: BeliefClient, user: str, ops) -> None:
    """Per-kind batches; see test_server_throughput for why the grouping
    is outcome-preserving on this trace. Every batch is single-user and
    therefore single-shard — the router forwards it whole, one round
    trip, one worker lock, one fsync."""
    inserts: list[list] = []
    disputes: list[list] = []
    for op in ops:
        if op.kind == "insert":
            inserts.append(list(op.values))
            if len(inserts) >= SHARD_BATCH_ROWS:
                client.execute_batch(INSERT_SQL, inserts)
                inserts.clear()
        elif op.kind == "dispute":
            disputes.append([user] + list(op.values))
            if len(disputes) >= SHARD_BATCH_ROWS:
                client.execute_batch(DISPUTE_SQL, disputes)
                disputes.clear()
        else:
            client.execute(op.sql)
    if inserts:
        client.execute_batch(INSERT_SQL, inserts)
    if disputes:
        client.execute_batch(DISPUTE_SQL, disputes)


def _time_cell(address, batched: bool) -> float:
    ops_per_client = _ops_per_client()
    streams = concurrent_trace(N_CLIENTS, ops_per_client, seed=11)
    barrier = threading.Barrier(N_CLIENTS + 1, timeout=60)
    errors: list = []

    def worker(name: str, ops) -> None:
        try:
            with BeliefClient(*address) as client:
                client.login(name, create=True)
                barrier.wait(timeout=60)
                if batched:
                    _drive_batched(client, name, ops)
                else:
                    _drive_blocking(client, ops)
        except Exception as exc:  # noqa: BLE001
            errors.append((name, exc))

    threads = [
        threading.Thread(target=worker, args=(name, ops))
        for name, ops in streams.items()
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=60)
    started = time.perf_counter()
    for t in threads:
        t.join(timeout=300)
    elapsed = time.perf_counter() - started
    assert not any(t.is_alive() for t in threads), "clients deadlocked"
    assert not errors, errors
    return elapsed


def _record(label: str, seconds: list[float]) -> None:
    elapsed = statistics.median(seconds)
    total_ops = N_CLIENTS * _ops_per_client()
    _RESULTS[label] = {
        "ops": total_ops,
        "seconds": elapsed,
        "ops_per_s": total_ops / elapsed if elapsed else float("inf"),
        "runs": len(seconds),
    }


def test_single_process_baseline(tmp_path):
    """The durable single-process blocking 16-client baseline cell."""
    seconds = []
    for i in range(_repeats()):
        db = BeliefDBMS(
            experiment_schema(), strict=False,
            durability=DurabilityManager(
                str(tmp_path / f"data-{i}"), sync="always"
            ),
        )
        with BeliefServer(db) as server:
            seconds.append(_time_cell(server.address, batched=False))
        db.close()
    _record("baseline", seconds)


@pytest.mark.parametrize("discipline", ("blocking", "batched"))
def test_sharded_throughput(discipline, tmp_path):
    spec = WorkerSpec(wal_sync="always")
    seconds = []
    for i in range(_repeats()):
        with ShardCluster(
            n_shards=N_SHARDS, spec=spec, worker_kind="process",
            data_dir=str(tmp_path / f"shards-{i}"),
        ) as cluster:
            seconds.append(
                _time_cell(cluster.address, batched=(discipline == "batched"))
            )
    _record(f"s4-{discipline}", seconds)


def test_shard_report(emit, record_json):
    if len(_RESULTS) < 3:
        pytest.skip("run the baseline and both sharded cells first")
    ops_per_client = _ops_per_client()
    base = _RESULTS["baseline"]
    lines = [
        f"Sharded throughput ({N_SHARDS} process shards, {N_CLIENTS} "
        f"clients, {ops_per_client} ops/client, durable WAL fsync, "
        f"median of {base['runs']:.0f})",
        f"{'cell':>14} {'total ops':>10} {'seconds':>9} {'ops/s':>9} "
        f"{'vs baseline':>12}",
    ]
    payload: dict = {"ops_per_client": ops_per_client, "n_shards": N_SHARDS}
    speedups: dict[str, float] = {}
    for label in ("baseline", "s4-blocking", "s4-batched"):
        r = _RESULTS[label]
        speedup = base["seconds"] / r["seconds"] if r["seconds"] else 1.0
        if label != "baseline":
            speedups[label] = speedup
        lines.append(
            f"{label:>14} {r['ops']:>10.0f} {r['seconds']:>9.3f} "
            f"{r['ops_per_s']:>9.0f} {speedup:>11.2f}x"
        )
        payload[label] = {
            f"c{N_CLIENTS}": {
                "seconds": r["seconds"],
                "ops_per_s": r["ops_per_s"],
                "speedup_vs_baseline": speedup,
            }
        }
    emit("\n".join(lines))
    record_json("shard", payload)

    # The sharding ISSUE's acceptance bar: ≥ 2x aggregate 16-client
    # throughput at 4 shards over the single-process blocking baseline.
    # Enforced on the best sharded cell — the batching discipline the
    # fleet deploys with, which amortizes router hop + worker lock + WAL
    # fsync per batch (measured 2.78x median on the bench box). The
    # blocking sharded cell is recorded, not gated: on a single-core
    # runner 4 worker processes add no hardware parallelism, so that
    # cell measures only the router hop's cost (~0.9x there; > 1x needs
    # real cores) — don't pretend otherwise. Only enforced at real
    # scale: CI's smoke run is all fixed cost and scheduler noise.
    best = max(speedups.values())
    if ops_per_client >= 40:
        assert best >= 2.0, (
            f"4-shard aggregate throughput peaked at {best:.2f}x the "
            "single-process blocking baseline: " + ", ".join(
                f"{k} {v:.2f}x" for k, v in sorted(speedups.items())
            )
        )

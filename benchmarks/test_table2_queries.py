"""Table 2 (Sect. 6.2): execution time and result size for seven queries.

Paper numbers (10,000 annotations, |R*| = 224,339, SQL Server 2005):

            q1,0  q1,1  q1,2  q1,3  q1,4    q2    q3
    E(ms)    105   145   146   152   144   436  4473
    size    1626  2816  2253  2061  1931   196    99

Absolute times are incomparable (pure Python vs. a commercial C++ server on
2005 hardware), but the *pattern* must hold: content queries q1,d are fast
and insensitive to the belief-path depth beyond the first E-join; the
conflict query q2 (two subgoals, one negative) is markedly slower; the user
query q3 (negative subgoal with a free user variable, ranging over every
user's world) is the slowest of all.
"""

from __future__ import annotations

import statistics

import pytest

from repro.bench.harness import bench_n, format_table
from repro.bench.queries import build_experiment_store, paper_queries
from repro.query.sql_gen import evaluate_sql
from repro.query.translate import evaluate_translated
from repro.relational.sqlite_backend import SqliteMirror

_TIMES: dict[tuple[str, str], float] = {}
_SIZES: dict[tuple[str, str], int] = {}


@pytest.fixture(scope="module")
def store():
    return build_experiment_store(n_annotations=bench_n(), n_users=10, seed=1)


@pytest.fixture(scope="module")
def mirror(store):
    m = SqliteMirror()
    m.sync(store.engine)
    yield m
    m.close()


_QUERIES = list(paper_queries(max_depth=4).items())


@pytest.mark.parametrize("name, query", _QUERIES, ids=[n for n, _ in _QUERIES])
def test_table2_engine(benchmark, store, name, query):
    result = benchmark.pedantic(
        lambda: evaluate_translated(store, query),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    _TIMES[(name, "engine")] = benchmark.stats.stats.mean * 1000
    _SIZES[(name, "engine")] = len(result)


@pytest.mark.parametrize("name, query", _QUERIES, ids=[n for n, _ in _QUERIES])
def test_table2_sqlite(benchmark, store, mirror, name, query):
    result = benchmark.pedantic(
        lambda: evaluate_sql(store, query, mirror),
        rounds=5, iterations=1, warmup_rounds=1,
    )
    _TIMES[(name, "sqlite")] = benchmark.stats.stats.mean * 1000
    _SIZES[(name, "sqlite")] = len(result)
    # Both backends must agree on the answers.
    assert len(result) == _SIZES[(name, "engine")]


def test_table2_report(benchmark, store, emit):
    names = [n for n, _ in _QUERIES]

    def render() -> str:
        rows = []
        for backend in ("engine", "sqlite"):
            rows.append(
                [f"E(ms) {backend}"]
                + [round(_TIMES[(n, backend)], 2) for n in names]
            )
        rows.append(["result size"] + [_SIZES[(n, "engine")] for n in names])
        return format_table(
            ["metric"] + names, rows,
            title=(
                f"Table 2 reproduction — n={bench_n()} annotations, "
                f"|R*|={store.total_rows():,} "
                f"(paper: n=10,000, |R*|=224,339)"
            ),
        )

    emit(benchmark(render))

    for backend in ("engine", "sqlite"):
        content = [_TIMES[(f"q1,{d}", backend)] for d in range(5)]
        q2 = _TIMES[("q2", backend)]
        q3 = _TIMES[("q3", backend)]
        # Content queries are in the same ballpark regardless of depth
        # (the paper: 105-152 ms; E is small, extra joins are cheap).
        assert max(content[1:]) < 6 * max(content[0], 1e-3)
        # The conflict query is slower than any content query, and the user
        # query is the slowest (paper: 436 ms and 4,473 ms vs. ~150 ms).
        assert q2 > min(content)
        assert q3 > max(content)
    # q3 ≫ q2 is asserted on the engine backend only: SQLite's planner
    # evaluates q2's per-row disjunction over the whole derived table and can
    # land slightly above q3 — a planner artifact, not a property of the
    # translation (see EXPERIMENTS.md).
    assert _TIMES[("q3", "engine")] > _TIMES[("q2", "engine")]
    # Result sizes: every query returns something on this workload, and the
    # conflict/user queries return far fewer rows than content queries.
    assert all(_SIZES[(n, "engine")] > 0 for n in names)
    assert _SIZES[("q3", "engine")] <= _SIZES[("q1,0", "engine")]

"""Recovery-time benchmarks: snapshot-interval ablation + bulk-restore path.

Two questions a durable deployment cares about:

* **How fast is restart?** Recovery = newest snapshot + WAL-tail replay, so
  checkpoint cadence is the knob: the ablation loads the same workload with
  different ``checkpoint_every`` settings and times a cold recovery of each
  resulting data directory. More frequent snapshots → shorter tails →
  faster restarts (at the cost of checkpoint work during the run).
* **Does the bulk-restore fast path pay?** WAL ``execute`` records are
  template + params, so replay rides the BDMS prepared-statement LRU —
  parse/compile once per distinct statement. Timing the same pure-WAL
  recovery with the statement cache disabled measures exactly that win.

Scale knob: ``BELIEFDB_BENCH_RECOVERY_OPS`` (logged ops, default 2000).
"""

from __future__ import annotations

import os
import time

from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import sightings_schema
from repro.durability import DurabilityManager

_RESULTS: dict[str, object] = {}


def _ops() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_RECOVERY_OPS", "2000"))


def _assertions_meaningful() -> bool:
    """Below ~500 ops both arms run in milliseconds; skip timing asserts."""
    return _ops() >= 500


def _load(data_dir: str, ops: int, checkpoint_every: int) -> int:
    """Log ``ops`` statements (2/3 inserts, 1/3 deletes); returns net size.

    The churn matters: a snapshot holds the *net* state while the WAL holds
    the full history, which is exactly why checkpoints shorten recovery.
    ``sync="off"`` keeps the load fast (we benchmark recovery, not fsync
    latency); close() still flushes, so the WAL is complete.
    """
    db = BeliefDBMS(
        sightings_schema(), strict=False,
        durability=DurabilityManager(
            data_dir, sync="off", checkpoint_every=checkpoint_every,
        ),
    )
    db.add_user("Carol")
    live: list[str] = []
    inserted = 0
    for i in range(ops):
        if i % 3 == 2 and live:
            db.execute_sql(
                "delete from BELIEF ? Sightings where sid = ?",
                ("Carol", live.pop(0)),
            )
        else:
            sid = f"s{inserted}"
            inserted += 1
            db.execute_sql(
                "insert into BELIEF ? Sightings values (?,?,?,?,?)",
                ("Carol", sid, "Carol", "crow", "6-14-08", "Lake Forest"),
            )
            live.append(sid)
    net = db.annotation_count()
    db.close()
    return net


def _recover(data_dir: str, stmt_cache_size: int = 128) -> tuple[float, int]:
    """Cold-recover a data dir; returns (seconds, annotations recovered)."""
    started = time.perf_counter()
    db = BeliefDBMS(
        sightings_schema(), strict=False, stmt_cache_size=stmt_cache_size,
        durability=DurabilityManager(data_dir, sync="off"),
    )
    elapsed = time.perf_counter() - started
    recovered = db.annotation_count()
    db.close()
    return elapsed, recovered


def test_snapshot_interval_ablation(tmp_path):
    ops = _ops()
    ablation: list[dict[str, float | int]] = []
    for label, every in (
        ("wal-only", 0),
        ("sparse", max(1, ops // 4)),
        ("frequent", max(1, ops // 16)),
    ):
        data_dir = str(tmp_path / f"ablate-{label}")
        net = _load(data_dir, ops, checkpoint_every=every)
        seconds, recovered = _recover(data_dir)
        assert recovered == net, f"{label}: lost ops in recovery"
        ablation.append({
            "label": label,
            "checkpoint_every": every,
            "recovery_s": seconds,
            "ops_per_s": ops / seconds if seconds else float("inf"),
        })
    _RESULTS["ablation"] = ablation
    _RESULTS["ops"] = ops
    by_label = {row["label"]: row["recovery_s"] for row in ablation}
    _RESULTS["recovery_wal_only_s"] = by_label["wal-only"]
    _RESULTS["recovery_frequent_snapshots_s"] = by_label["frequent"]
    if _assertions_meaningful():
        # Snapshots must beat full-log replay — that is their whole point.
        assert by_label["frequent"] < by_label["wal-only"], ablation


def test_bulk_restore_fast_path(tmp_path):
    ops = _ops()
    data_dir = str(tmp_path / "fastpath")
    net = _load(data_dir, ops, checkpoint_every=0)

    cached_s, recovered = _recover(data_dir, stmt_cache_size=128)
    assert recovered == net
    uncached_s, recovered = _recover(data_dir, stmt_cache_size=0)
    assert recovered == net

    _RESULTS["replay_cached_s"] = cached_s
    _RESULTS["replay_uncached_s"] = uncached_s
    _RESULTS["fast_path_speedup"] = (
        uncached_s / cached_s if cached_s else float("inf")
    )
    if _assertions_meaningful():
        # The acceptance claim: replay through the prepared-statement cache
        # beats per-record parse+compile.
        assert cached_s < uncached_s, (
            f"cached replay {cached_s:.3f}s not faster than "
            f"uncached {uncached_s:.3f}s"
        )


def test_recovery_report(emit, record_json):
    import pytest

    if "ablation" not in _RESULTS or "replay_cached_s" not in _RESULTS:
        pytest.skip("run the recovery benchmarks first")
    ops = _RESULTS["ops"]
    lines = [
        f"Recovery time vs snapshot interval ({ops} logged ops)",
        f"{'configuration':>12} {'ckpt every':>11} {'recovery s':>11} "
        f"{'ops/s':>10}",
    ]
    for row in _RESULTS["ablation"]:
        lines.append(
            f"{row['label']:>12} {row['checkpoint_every']:>11} "
            f"{row['recovery_s']:>11.3f} {row['ops_per_s']:>10.0f}"
        )
    lines.append(
        f"bulk-restore fast path: cached {_RESULTS['replay_cached_s']:.3f}s "
        f"vs uncached {_RESULTS['replay_uncached_s']:.3f}s "
        f"({_RESULTS['fast_path_speedup']:.2f}x)"
    )
    emit("\n".join(lines))
    record_json("recovery", dict(_RESULTS))

"""Server throughput at 1, 4, and 16 concurrent clients, three ways.

Each client runs its own deterministic per-user stream from
``concurrent_trace`` over a private TCP connection (login + inserts into its
own belief world + disputes on a shared key pool + selects), mimicking the
paper's community-database scenario under concurrent curation. Three
request disciplines run the same streams:

* **blocking**  — the threaded server, one request in flight per connection
  (the PR 1 baseline): every op pays a full round trip + lock handoff
  before the next op of that connection can start;
* **pipelined** — the asyncio server with a sliding window of
  ``PIPELINE_WINDOW`` requests in flight per connection, responses
  correlated by request id;
* **batched**   — ditto, with each client's inserts and disputes grouped
  into ``execute_batch`` calls (one round trip, one write-lock
  acquisition, and on durable servers one WAL fsync per batch); selects
  ride the pipeline. Insert and shared-pool dispute keys are disjoint in
  ``concurrent_trace``, so per-kind grouping never reorders an outcome.
* **txn**       — the transactional discipline: writes staged one round
  trip at a time (in-transaction requests must not be pipelined) and
  committed in ``BATCH_ROWS``-statement transactions — one write-lock
  acquisition and ONE fsync per commit instead of per statement. The
  txn-vs-autocommit comparison at 16 clients is the commit-throughput
  metric of the transactional-sessions redesign.

The same matrix then runs **durable** (``--data-dir`` semantics,
``wal_sync="always"``) at the top client count — the paper's
community-curation deployment, where every acknowledged write costs an
fsync and batching amortizes it 16:1.

``test_throughput_report`` prints both tables, records machine-readable
numbers to ``benchmarks/results/bench_results.json`` (the CI regression
gate tracks the pipelined/batched 16-client cells), and — at real scale —
asserts the ISSUE 4 acceptance bar: pipelined or batched aggregate
16-client throughput ≥ 2x the blocking client baseline.

Scale knobs: ``BELIEFDB_BENCH_SERVER_OPS`` (ops per client, default 60).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import experiment_schema
from repro.durability import DurabilityManager
from repro.errors import BeliefDBError
from repro.server import AsyncBeliefServer, BeliefClient, BeliefServer
from repro.workload.generator import ConcurrentOp, concurrent_trace

CLIENT_COUNTS = (1, 4, 16)
VARIANTS = ("blocking", "pipelined", "batched", "txn")

#: In-flight window for the pipelined discipline.
PIPELINE_WINDOW = 16

#: Rows grouped per execute_batch call in the batched discipline, and
#: statements grouped per transaction in the txn discipline.
BATCH_ROWS = 16

INSERT_SQL = "insert into Sightings values (?,?,?,?,?)"
#: Disputes are negative beliefs in the client's own world; the explicit
#: BELIEF path binds the user's name as the first parameter.
DISPUTE_SQL = "insert into BELIEF ? not Sightings values (?,?,?,?,?)"

_RESULTS: dict[tuple[str, int], dict[str, float]] = {}


def _ops_per_client() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_SERVER_OPS", "60"))


def apply_op(client: BeliefClient, op: ConcurrentOp) -> None:
    if op.kind == "insert":
        client.insert(op.relation, list(op.values))
    elif op.kind == "dispute":
        client.dispute(op.relation, list(op.values))
    elif op.kind == "select":
        client.execute(op.sql)
    else:
        raise BeliefDBError(f"unknown op kind {op.kind!r}")


def _drive_blocking(client: BeliefClient, ops) -> None:
    for op in ops:
        apply_op(client, op)


def _drive_pipelined(client: BeliefClient, ops) -> None:
    """Same ops, a sliding window of PIPELINE_WINDOW requests in flight."""
    window: list = []
    for op in ops:
        if op.kind == "select":
            window.append(client.submit("execute", sql=op.sql))
        else:
            sign = "+" if op.kind == "insert" else "-"
            window.append(client.submit(
                "insert", relation=op.relation, values=list(op.values),
                path=None, sign=sign,
            ))
        if len(window) >= PIPELINE_WINDOW:
            window.pop(0).result()  # slide: keep the pipe full
    for reply in window:
        reply.result()


def _drive_batched(client: BeliefClient, user: str, ops) -> None:
    """Inserts and disputes grouped into execute_batch calls.

    Per-kind grouping is outcome-preserving for this trace: a client's
    insert keys (its own namespace) and dispute keys (the shared pool) are
    disjoint, so only like-kind order matters and that is preserved.
    """
    inserts: list[list] = []
    disputes: list[list] = []
    window: list = []
    for op in ops:
        if op.kind == "insert":
            inserts.append(list(op.values))
            if len(inserts) >= BATCH_ROWS:
                client.execute_batch(INSERT_SQL, inserts)
                inserts.clear()
        elif op.kind == "dispute":
            disputes.append([user] + list(op.values))
            if len(disputes) >= BATCH_ROWS:
                client.execute_batch(DISPUTE_SQL, disputes)
                disputes.clear()
        else:
            window.append(client.submit("execute", sql=op.sql))
            if len(window) >= PIPELINE_WINDOW:
                window.pop(0).result()
    if inserts:
        client.execute_batch(INSERT_SQL, inserts)
    if disputes:
        client.execute_batch(DISPUTE_SQL, disputes)
    for reply in window:
        reply.result()


def _drive_txn(client: BeliefClient, user: str, ops) -> None:
    """Writes grouped into BATCH_ROWS-statement transactions.

    The txn-commit discipline (ISSUE 5): each write is staged with its own
    round trip — in-transaction requests must not be pipelined — but the
    whole group commits with ONE write-lock acquisition and ONE WAL fsync,
    vs one of each per statement under autocommit ("blocking"). Relative
    statement order is fully preserved (one pending list), and a select
    commits the open group first so it observes the client's own prior
    writes, exactly as under autocommit.
    """
    pending: list[tuple[str, list]] = []

    def flush() -> None:
        if not pending:
            return
        client.begin()
        for sql, params in pending:
            client.execute_prepared(sql, params)
        client.commit()
        pending.clear()

    for op in ops:
        if op.kind == "insert":
            pending.append((INSERT_SQL, list(op.values)))
        elif op.kind == "dispute":
            pending.append((DISPUTE_SQL, [user] + list(op.values)))
        else:
            flush()
            client.execute(op.sql)
        if len(pending) >= BATCH_ROWS:
            flush()
    flush()


def _drive(variant: str, client: BeliefClient, user: str, ops) -> None:
    if variant == "blocking":
        _drive_blocking(client, ops)
    elif variant == "pipelined":
        _drive_pipelined(client, ops)
    elif variant == "batched":
        _drive_batched(client, user, ops)
    else:
        _drive_txn(client, user, ops)


def _make_server(variant: str, db: BeliefDBMS):
    if variant == "blocking":
        return BeliefServer(db)
    return AsyncBeliefServer(db)


def _run_matrix_cell(
    variant: str,
    n_clients: int,
    label: str | None = None,
    data_dir: str | None = None,
) -> None:
    ops_per_client = _ops_per_client()
    streams = concurrent_trace(n_clients, ops_per_client, seed=11)
    durability = (
        DurabilityManager(data_dir, sync="always")
        if data_dir is not None else None
    )
    db = BeliefDBMS(experiment_schema(), strict=False, durability=durability)
    with _make_server(variant, db) as server:
        barrier = threading.Barrier(n_clients + 1, timeout=30)
        errors: list = []

        def worker(name: str, ops) -> None:
            try:
                with BeliefClient(*server.address) as client:
                    client.login(name, create=True)
                    barrier.wait(timeout=30)
                    _drive(variant, client, name, ops)
            except Exception as exc:  # noqa: BLE001
                errors.append((name, exc))

        threads = [
            threading.Thread(target=worker, args=(name, ops))
            for name, ops in streams.items()
        ]
        for t in threads:
            t.start()
        barrier.wait(timeout=30)  # every client connected and logged in
        started = time.perf_counter()
        for t in threads:
            t.join(timeout=300)
        elapsed = time.perf_counter() - started
        assert not any(t.is_alive() for t in threads), "clients deadlocked"
        assert not errors, errors
    if durability is not None:
        db.close()

    total_ops = n_clients * ops_per_client
    _RESULTS[(label or variant, n_clients)] = {
        "ops": total_ops,
        "seconds": elapsed,
        "ops_per_s": total_ops / elapsed if elapsed else float("inf"),
    }
    assert db.annotation_count() > 0


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_server_throughput(n_clients):
    """The blocking baseline (threaded server, one request in flight)."""
    _run_matrix_cell("blocking", n_clients)


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_pipelined_throughput(n_clients):
    _run_matrix_cell("pipelined", n_clients)


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_batched_throughput(n_clients):
    _run_matrix_cell("batched", n_clients)


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_txn_throughput(n_clients):
    """Writes in BATCH_ROWS-statement transactions vs per-statement
    autocommit — the commit-throughput metric of the txn redesign."""
    _run_matrix_cell("txn", n_clients)


@pytest.mark.parametrize("variant", VARIANTS)
def test_durable_throughput(variant, tmp_path):
    """The same disciplines against a durable server (fsync'd WAL): the
    many-small-writes deployment where one-fsync-per-batch pays hardest."""
    _run_matrix_cell(
        variant, max(CLIENT_COUNTS),
        label=f"durable-{variant}", data_dir=str(tmp_path / "data"),
    )


def test_throughput_report(emit, record_json):
    top = max(CLIENT_COUNTS)
    expected = len(VARIANTS) * len(CLIENT_COUNTS) + len(VARIANTS)
    if len(_RESULTS) < expected:
        pytest.skip("run the full variant x client-count matrix first")
    ops_per_client = _ops_per_client()
    lines = [
        f"Server throughput (concurrent_trace, {ops_per_client} ops/client; "
        f"pipeline window {PIPELINE_WINDOW}, batch rows {BATCH_ROWS})",
        f"{'variant':>17} {'clients':>8} {'total ops':>10} "
        f"{'seconds':>9} {'ops/s':>9} {'vs blocking':>12}",
    ]
    payload: dict = {"ops_per_client": ops_per_client}
    speedups: dict[str, float] = {}

    def add_row(label: str, variant: str, n_clients: int, base_label: str):
        r = _RESULTS[(label, n_clients)]
        base = _RESULTS[(base_label, n_clients)]
        speedup = base["seconds"] / r["seconds"] if r["seconds"] else 1.0
        if variant != "blocking" and n_clients == top:
            speedups[label] = speedup
        lines.append(
            f"{label:>17} {n_clients:>8} {r['ops']:>10.0f} "
            f"{r['seconds']:>9.3f} {r['ops_per_s']:>9.0f} "
            f"{speedup:>11.2f}x"
        )
        payload.setdefault(label, {})[f"c{n_clients}"] = {
            "seconds": r["seconds"],
            "ops_per_s": r["ops_per_s"],
            "speedup_vs_blocking": speedup,
        }

    for variant in VARIANTS:
        for n_clients in CLIENT_COUNTS:
            add_row(variant, variant, n_clients, "blocking")
    for variant in VARIANTS:
        add_row(f"durable-{variant}", variant, top, "durable-blocking")
    emit("\n".join(lines))
    record_json("server_throughput", payload)

    # The ISSUE 4 acceptance bar: ≥ 2x aggregate 16-client throughput over
    # the blocking client baseline, from pipelining and/or batching. The
    # bar is enforced on the DURABLE matrix — the many-small-writes
    # deployment the ISSUE motivates, where each blocking write pays an
    # fsync and batching amortizes it 16:1 (durable-batched vs
    # durable-blocking measured 2.65x on the bench box). The ephemeral
    # cells are recorded for the table and bounded in absolute seconds by
    # check_regression.py, but localhost round trips are too cheap for a
    # 2x protocol-discipline win there — don't pretend otherwise. Only
    # enforced at real scale: CI's smoke run (8 ops/client) is all fixed
    # cost and scheduler noise.
    durable_best = max(
        speedups["durable-pipelined"], speedups["durable-batched"]
    )
    if ops_per_client >= 40:
        assert durable_best >= 2.0, (
            "pipelined/batched 16-client speedup vs the durable blocking "
            f"baseline peaked at {durable_best:.2f}x: " + ", ".join(
                f"{k} {v:.2f}x" for k, v in sorted(speedups.items())
            )
        )

"""Server throughput at 1, 4, and 16 concurrent clients.

Each client runs its own deterministic per-user stream from
``concurrent_trace`` over a private TCP connection (login + inserts into its
own belief world + disputes on a shared key pool + selects), mimicking the
paper's community-database scenario under concurrent curation.

Scale knobs: ``BELIEFDB_BENCH_SERVER_OPS`` (ops per client, default 60).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import experiment_schema
from repro.errors import BeliefDBError
from repro.server import BeliefClient, BeliefServer
from repro.workload.generator import ConcurrentOp, concurrent_trace

CLIENT_COUNTS = (1, 4, 16)

_RESULTS: dict[int, dict[str, float]] = {}


def _ops_per_client() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_SERVER_OPS", "60"))


def apply_op(client: BeliefClient, op: ConcurrentOp) -> None:
    if op.kind == "insert":
        client.insert(op.relation, list(op.values))
    elif op.kind == "dispute":
        client.dispute(op.relation, list(op.values))
    elif op.kind == "select":
        client.execute(op.sql)
    else:
        raise BeliefDBError(f"unknown op kind {op.kind!r}")


def _drive(address, name: str, ops, barrier: threading.Barrier, errors: list):
    try:
        with BeliefClient(*address) as client:
            client.login(name, create=True)
            barrier.wait(timeout=30)
            for op in ops:
                apply_op(client, op)
    except Exception as exc:  # noqa: BLE001
        errors.append((name, exc))


@pytest.mark.parametrize("n_clients", CLIENT_COUNTS)
def test_server_throughput(n_clients):
    ops_per_client = _ops_per_client()
    streams = concurrent_trace(n_clients, ops_per_client, seed=11)
    db = BeliefDBMS(experiment_schema(), strict=False)
    with BeliefServer(db) as server:
        barrier = threading.Barrier(n_clients + 1, timeout=30)
        errors: list = []
        threads = [
            threading.Thread(
                target=_drive,
                args=(server.address, name, ops, barrier, errors),
            )
            for name, ops in streams.items()
        ]
        for t in threads:
            t.start()
        barrier.wait(timeout=30)  # every client connected and logged in
        started = time.perf_counter()
        for t in threads:
            t.join(timeout=300)
        elapsed = time.perf_counter() - started
        assert not any(t.is_alive() for t in threads), "clients deadlocked"
        assert not errors, errors

    total_ops = n_clients * ops_per_client
    _RESULTS[n_clients] = {
        "ops": total_ops,
        "seconds": elapsed,
        "ops_per_s": total_ops / elapsed if elapsed else float("inf"),
    }
    assert db.annotation_count() > 0


def test_throughput_report(emit):
    if len(_RESULTS) < len(CLIENT_COUNTS):
        pytest.skip("run the full client-count matrix first")
    lines = [
        "Server throughput (concurrent_trace, "
        f"{_ops_per_client()} ops/client)",
        f"{'clients':>8} {'total ops':>10} {'seconds':>9} {'ops/s':>9}",
    ]
    for n_clients in CLIENT_COUNTS:
        r = _RESULTS[n_clients]
        lines.append(
            f"{n_clients:>8} {r['ops']:>10.0f} "
            f"{r['seconds']:>9.3f} {r['ops_per_s']:>9.0f}"
        )
    emit("\n".join(lines))

"""Ablation (Sect. 5.3): incremental updates vs. batch re-materialization.

The paper's Algorithms 2-4 exist so that each new annotation touches only the
worlds it affects. The alternative would be rebuilding the canonical
representation from scratch after every change. We measure:

* loading a whole workload through the incremental path, vs. one batch
  materialization of the same statements (batch should win on bulk loads —
  it skips intermediate states);
* the cost of a *single* insert appended to an existing database, vs. a full
  rebuild (incremental must win by a wide margin — this is its raison d'être).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_n, format_table
from repro.storage.representation import materialize
from repro.storage.updates import insert_statement
from repro.workload.generator import (
    AnnotationGenerator,
    WorkloadConfig,
    build_store,
)

_STATS: dict[str, float] = {}


def _config() -> WorkloadConfig:
    return WorkloadConfig(
        n_annotations=max(200, bench_n() // 2),
        n_users=10,
        depth_distribution=(0.5, 0.35, 0.15),
        participation="zipf",
        seed=5,
    )


@pytest.fixture(scope="module")
def loaded():
    store, _ = build_store(_config())
    return store


def test_bulk_load_incremental(benchmark):
    def load():
        store, stats = build_store(_config())
        return store

    store = benchmark.pedantic(load, rounds=1, iterations=1)
    _STATS["incremental_ms"] = benchmark.stats.stats.mean * 1000
    _STATS["size"] = store.total_rows()


def test_bulk_load_batch(benchmark, loaded):
    db = loaded.to_belief_database()

    def rebuild():
        return materialize(db, user_names=loaded.users())

    store = benchmark.pedantic(rebuild, rounds=1, iterations=1)
    _STATS["batch_ms"] = benchmark.stats.stats.mean * 1000
    assert store.total_rows() == loaded.total_rows()


def test_single_insert_incremental(benchmark, loaded):
    generator = AnnotationGenerator(_config(), loaded.schema)
    statements = iter(generator)

    def one_insert():
        stmt = next(statements)
        insert_statement(loaded, stmt)

    benchmark.pedantic(one_insert, rounds=20, iterations=1)
    _STATS["single_insert_ms"] = benchmark.stats.stats.mean * 1000


def test_insert_report(benchmark, loaded, emit):
    def render() -> str:
        per_annotation = _STATS["incremental_ms"] / max(
            1, _config().n_annotations
        )
        rows = [
            ["bulk load, incremental (Alg. 2-4)",
             round(_STATS["incremental_ms"], 1)],
            ["bulk load, batch materialization",
             round(_STATS["batch_ms"], 1)],
            ["single insert, incremental",
             round(_STATS["single_insert_ms"], 3)],
            ["single insert, amortized bulk rate",
             round(per_annotation, 3)],
            ["full rebuild a single insert would cost",
             round(_STATS["batch_ms"], 1)],
        ]
        return format_table(
            ("operation", "ms"),
            rows,
            title=f"Updates — incremental vs batch "
                  f"(|R*|={int(_STATS['size']):,})",
        )

    emit(benchmark(render))
    # Appending one annotation must be far cheaper than a full rebuild.
    assert _STATS["single_insert_ms"] < _STATS["batch_ms"] / 5

#!/usr/bin/env python
"""Fail CI when smoke-benchmark numbers regress badly vs the baseline.

Usage::

    python benchmarks/check_regression.py \
        [--results benchmarks/results/bench_results.json] \
        [--baseline benchmarks/baseline.json] [--factor 3.0]

``baseline.json`` pins, for each tracked metric (a dotted path into the
results JSON), the reference seconds measured at CI smoke scale — with a
generous floor baked in, because sub-100ms measurements on shared runners
are noise. A metric **fails** when ``current > factor × baseline`` (default
factor from the baseline file), and a tracked metric that is *missing* from
the results also fails — a silently-skipped benchmark must not pass the
gate. Faster-than-baseline is always fine; this is a one-sided check for
pathological slowdowns (the ISSUE's ">3x" contract), not a microbenchmark.

Exit status: 0 all good, 1 regression/missing metric, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

HERE = pathlib.Path(__file__).parent


def lookup(results: dict[str, Any], dotted: str) -> Any:
    node: Any = results
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results", default=str(HERE / "results" / "bench_results.json")
    )
    parser.add_argument("--baseline", default=str(HERE / "baseline.json"))
    parser.add_argument(
        "--factor", type=float, default=None,
        help="override the baseline file's max_regression_factor",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="PREFIX",
        help="check only metrics whose dotted name starts with PREFIX "
             "(repeatable) — lets a job that ran one benchmark file gate "
             "just its own section, e.g. --only shard.",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(pathlib.Path(args.baseline).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    try:
        results = json.loads(pathlib.Path(args.results).read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read results {args.results}: {exc}", file=sys.stderr)
        print("did the benchmark smoke run produce bench_results.json?",
              file=sys.stderr)
        return 1

    factor = args.factor
    if factor is None:
        factor = float(baseline.get("max_regression_factor", 3.0))
    metrics = baseline.get("metrics", {})
    if args.only:
        metrics = {
            name: ref for name, ref in metrics.items()
            if any(name.startswith(prefix) for prefix in args.only)
        }
        if not metrics:
            print(
                f"no tracked metric matches --only {args.only}",
                file=sys.stderr,
            )
            return 2
    if not metrics:
        print("baseline tracks no metrics — nothing to check", file=sys.stderr)
        return 2

    failures = 0
    width = max(len(name) for name in metrics)
    for name, reference in sorted(metrics.items()):
        current = lookup(results, name)
        if not isinstance(current, (int, float)):
            print(f"FAIL {name:<{width}}  missing from results")
            failures += 1
            continue
        limit = factor * float(reference)
        verdict = "ok  " if current <= limit else "FAIL"
        # Latency metrics are recorded in milliseconds (dotted paths ending
        # in ``_ms``); everything else is seconds.
        unit = "ms" if name.endswith("_ms") else "s"
        print(
            f"{verdict} {name:<{width}}  current {current:8.3f}{unit}  "
            f"baseline {reference:8.3f}{unit}  limit {limit:8.3f}{unit}"
        )
        failures += current > limit
    if failures:
        print(
            f"\n{failures} metric(s) regressed beyond {factor:.1f}x baseline "
            f"(or went missing)", file=sys.stderr,
        )
        return 1
    print(f"\nall {len(metrics)} tracked metrics within {factor:.1f}x baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

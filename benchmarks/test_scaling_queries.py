"""Sect. 6.2's scaling claim: "evaluation time scales roughly linear with the
size of the BDMS (|R*|)".

We grow the database geometrically and time the three query families at each
size. The report prints time-per-|R*| ratios; the assertion is deliberately
loose (wall-clock noise), checking only that queries on the largest store are
not dramatically cheaper than linear scaling from the smallest would predict
— i.e. no super-linear blowup hides in the translation.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_n, format_table
from repro.bench.queries import (
    build_experiment_store,
    conflict_query,
    content_query,
    user_query,
)
from repro.query.translate import evaluate_translated

_SIZES: list[int] = []
_DATA: dict[tuple[str, int], float] = {}


def _ns() -> list[int]:
    top = max(200, bench_n())
    return [max(25, top // 8), max(50, top // 4), max(100, top // 2), top]


_QUERIES = {
    "q1,1": content_query((1,)),
    "q2": conflict_query(),
    "q3": user_query(),
}


@pytest.fixture(scope="module")
def stores():
    return {n: build_experiment_store(n, n_users=10, seed=2) for n in _ns()}


@pytest.mark.parametrize("n", _ns(), ids=[f"n{n}" for n in _ns()])
@pytest.mark.parametrize("qname", list(_QUERIES), ids=list(_QUERIES))
def test_scaling_point(benchmark, stores, qname, n):
    store = stores[n]
    query = _QUERIES[qname]
    benchmark.pedantic(
        lambda: evaluate_translated(store, query),
        rounds=3, iterations=1, warmup_rounds=1,
    )
    _DATA[(qname, n)] = benchmark.stats.stats.mean * 1000


def test_scaling_report(benchmark, stores, emit):
    ns = _ns()
    sizes = {n: stores[n].total_rows() for n in ns}

    def render() -> str:
        rows = []
        for n in ns:
            row = [n, sizes[n]]
            for qname in _QUERIES:
                ms = _DATA[(qname, n)]
                row.append(round(ms, 2))
                row.append(round(1000 * ms / sizes[n], 3))
            rows.append(row)
        headers = ["n", "|R*|"]
        for qname in _QUERIES:
            headers += [f"{qname} ms", f"{qname} µs/|R*|"]
        return format_table(
            headers, rows,
            title="Query time vs database size "
                  "(Sect. 6.2: 'roughly linear with |R*|')",
        )

    emit(benchmark(render))

    small, large = ns[0], ns[-1]
    growth = stores[large].total_rows() / stores[small].total_rows()
    for qname in _QUERIES:
        ratio = _DATA[(qname, large)] / max(_DATA[(qname, small)], 1e-6)
        # No worse than ~quadratic in |R*| growth, with generous noise slack.
        assert ratio < growth * growth * 5, (qname, ratio, growth)

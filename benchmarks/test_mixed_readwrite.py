"""Mixed read/write latency: scanning readers racing sustained writers.

The MVCC acceptance cell (``docs/concurrency.md``): 16 writer clients
insert continuously into a **durable** server (``wal_sync="always"`` —
every committed write holds the write lock across an fsync, the paper's
community-curation deployment) while 4 reader clients run full-table
scans, two ways —

* **mvcc** (the shipping discipline): scans serve lock-free from pinned
  versions, so reader latency is decoupled from the write queue;
* **locked** (``BeliefServer._force_locked_reads = True``): scans take
  the readers-writer lock again — the pre-MVCC discipline — so every
  scan queues behind the writers' fsync-bound exclusive acquisitions.

Durability is what makes the A/B meaningful: ephemeral in-memory writes
release the lock in microseconds, so lock queueing costs less than the
per-epoch copy-on-write fork and the disciplines tie. When writes are
slow, MVCC's decoupling is the whole game: scan CPU hides under the
writers' fsync waits instead of queueing behind them.

Both cells run a **fixed work quota** — every writer inserts exactly
``writes`` rows and every reader runs exactly ``writes // 2`` scans —
and the throughput metric is the cell **makespan** (barrier to last
thread done). Free-running time-bound readers would do strictly more
scans in the discipline that unblocks them, and a writer-window timing
would credit the locked discipline for pushing scan CPU outside the
window it measures; fixed quotas + makespan compare identical workloads
end to end.

A third, **open-loop** cell offers scans at a calibrated fixed arrival
rate while background writers hammer closed-loop, measuring scan p50/p99
in the regime where queueing is visible at all (closed-loop readers
self-throttle).

``bench_results.json`` section ``mvcc`` feeds the CI regression gate
(``check_regression.py --only mvcc.``). The A/B acceptance bar — reader
p99 improved under MVCC with writer throughput within 10% — is asserted
at real scale only; CI's smoke run (8 writes/writer) is fixed cost and
scheduler noise.

Scale knobs: ``BELIEFDB_BENCH_MIXED_OPS`` (writes per writer, default
40), ``BELIEFDB_BENCH_MIXED_OPENLOOP_OPS`` (open-loop scans, default
160).
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from repro.bdms.bdms import BeliefDBMS
from repro.bench.openloop import run_open_loop
from repro.core.schema import sightings_schema
from repro.durability import DurabilityManager
from repro.obs.clock import monotonic_s
from repro.server import BeliefClient, BeliefServer

N_WRITERS = 16
N_READERS = 4
SEED_ROWS = 100

SELECT = "select S.sid from BELIEF 'Carol' Sightings as S"
#: The open-loop cell's scan: same full-table scan server-side, but the
#: equality filter keeps the reply frame tiny while background writers
#: grow the table without bound (the unfiltered scan would eventually
#: exceed the 1 MiB frame ceiling there).
FILTERED_SCAN = (
    "select S.sid from BELIEF 'Carol' Sightings as S "
    "where S.sid = 'seed0'"
)
INSERT = "insert into Sightings values (?,?,?,?,?)"
ROW_TAIL = ["Carol", "bald eagle", "6-14-08", "Lake Forest"]

MAX_STEADY_RATE = 1500.0
MIN_RATE = 50.0


def _writes_per_writer() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_MIXED_OPS", "40"))


def _openloop_ops() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_MIXED_OPENLOOP_OPS", "160"))


def _seeded_db(data_dir: str | None = None) -> BeliefDBMS:
    durability = (
        DurabilityManager(data_dir, sync="always")
        if data_dir is not None else None
    )
    db = BeliefDBMS(sightings_schema(), strict=False, durability=durability)
    db.add_user("Carol")
    for i in range(SEED_ROWS):
        db.insert(["Carol"], "Sightings", (f"seed{i}", *ROW_TAIL))
    return db


def _percentile(sorted_ms: list[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    index = min(len(sorted_ms) - 1, int(q * (len(sorted_ms) - 1) + 0.5))
    return sorted_ms[index]


def _run_closed_cell(force_locked: bool) -> dict[str, float]:
    """16 durable writers + 4 scanning readers, fixed quotas each."""
    writes = _writes_per_writer()
    scans_per_reader = max(4, writes // 2)
    tmp = tempfile.TemporaryDirectory()
    db = _seeded_db(data_dir=os.path.join(tmp.name, "data"))
    original = BeliefServer._force_locked_reads
    BeliefServer._force_locked_reads = force_locked
    try:
        with BeliefServer(db) as server:
            barrier = threading.Barrier(N_WRITERS + N_READERS + 1, timeout=30)
            errors: list = []
            scan_ms: list[list[float]] = [[] for _ in range(N_READERS)]

            def writer(w: int) -> None:
                try:
                    with BeliefClient(*server.address) as client:
                        client.login(f"w{w}", create=True)
                        barrier.wait(timeout=30)
                        for i in range(writes):
                            client.insert(
                                "Sightings", [f"w{w}-{i}", *ROW_TAIL],
                                path=["Carol"],
                            )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            def reader(r: int) -> None:
                try:
                    with BeliefClient(*server.address) as client:
                        client.execute(SELECT)  # warm: parse + first plan
                        barrier.wait(timeout=30)
                        for _ in range(scans_per_reader):
                            start = monotonic_s()
                            client.execute(SELECT)
                            scan_ms[r].append(
                                (monotonic_s() - start) * 1000.0
                            )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=writer, args=(w,))
                for w in range(N_WRITERS)
            ] + [
                threading.Thread(target=reader, args=(r,))
                for r in range(N_READERS)
            ]
            for t in threads:
                t.start()
            barrier.wait(timeout=30)
            started = time.perf_counter()
            for t in threads:
                t.join(timeout=300)
            makespan = time.perf_counter() - started
            assert not any(t.is_alive() for t in threads), "cell deadlocked"
            assert not errors, errors
    finally:
        BeliefServer._force_locked_reads = original
        db.close()
        tmp.cleanup()

    samples = sorted(ms for per in scan_ms for ms in per)
    total_writes = N_WRITERS * writes
    return {
        "writes": total_writes,
        "scans": len(samples),
        "makespan_seconds": makespan,
        "writes_per_s": total_writes / makespan if makespan
        else float("inf"),
        "reader_p50_ms": round(_percentile(samples, 0.50), 3),
        "reader_p99_ms": round(_percentile(samples, 0.99), 3),
    }


def _run_openloop_cell() -> dict:
    """Scans at a calibrated fixed arrival rate under background writes."""
    db = _seeded_db()
    with BeliefServer(db) as server:
        stop = threading.Event()
        write_errors: list = []

        def background_writer(w: int) -> None:
            try:
                with BeliefClient(*server.address) as client:
                    client.login(f"ow{w}", create=True)
                    i = 0
                    while not stop.is_set():
                        client.insert(
                            "Sightings", [f"ow{w}-{i}", *ROW_TAIL],
                            path=["Carol"],
                        )
                        i += 1
            except Exception as exc:  # noqa: BLE001
                write_errors.append(exc)

        writers = [
            threading.Thread(target=background_writer, args=(w,))
            for w in range(8)
        ]
        for t in writers:
            t.start()
        try:
            # Calibrate scan capacity UNDER write load — a quiet-server
            # number would schedule arrivals far beyond loaded capacity
            # and measure pure queueing collapse instead of service time.
            probe = BeliefClient(*server.address)
            try:
                probe.execute(FILTERED_SCAN)
                start = monotonic_s()
                for _ in range(30):
                    probe.execute(FILTERED_SCAN)
                capacity = 30 / max(monotonic_s() - start, 1e-9)
            finally:
                probe.close()
            rate = max(MIN_RATE, min(capacity * 0.5, MAX_STEADY_RATE))
            report = run_open_loop(
                lambda: BeliefClient(*server.address),
                lambda i: ("execute", {"sql": FILTERED_SCAN}),
                rate=rate, total_ops=_openloop_ops(), workers=N_READERS,
            )
        finally:
            stop.set()
            for t in writers:
                t.join(timeout=60)
        assert not write_errors, write_errors
        assert report.errors == 0
        assert report.completed == report.offered
    return report.as_dict() | {"calibrated_capacity": round(capacity, 1)}


def test_mixed_readwrite(record_json, emit):
    mvcc = _run_closed_cell(force_locked=False)
    locked = _run_closed_cell(force_locked=True)
    openloop = _run_openloop_cell()
    record_json("mvcc", {
        "writes_per_writer": _writes_per_writer(),
        "closed": mvcc,
        "closed_locked": locked,
        "openloop": openloop,
    })

    lines = [
        f"mixed read/write ({N_WRITERS} durable writers x "
        f"{_writes_per_writer()} inserts, {N_READERS} scanning readers)",
        f"{'cell':<14} {'makespan s':>10} {'writes/s':>9} {'scans':>6} "
        f"{'scan p50 ms':>12} {'scan p99 ms':>12}",
    ]
    for name, r in (("mvcc", mvcc), ("locked", locked)):
        lines.append(
            f"{name:<14} {r['makespan_seconds']:>10.3f} "
            f"{r['writes_per_s']:>9.0f} {r['scans']:>6.0f} "
            f"{r['reader_p50_ms']:>12.3f} {r['reader_p99_ms']:>12.3f}"
        )
    lines.append(
        f"{'open-loop':<14} {'':>10} {openloop['target_rate']:>9.0f} "
        f"{openloop['completed']:>6} {openloop['p50_ms']:>12.3f} "
        f"{openloop['p99_ms']:>12.3f}"
    )
    emit("\n".join(lines))

    # The acceptance bar, at real scale only: MVCC scans must not be
    # slower at the tail than lock-queued scans, and decoupling readers
    # must not cost the mixed workload more than 10% throughput (the
    # makespan covers the identical write+scan quota in both cells).
    # Smoke scale (CI) is all fixed cost — there the gate is
    # check_regression.py's absolute 3x bound on the recorded numbers.
    if _writes_per_writer() >= 40:
        assert mvcc["reader_p99_ms"] <= locked["reader_p99_ms"], (
            f"MVCC scan p99 {mvcc['reader_p99_ms']}ms worse than the "
            f"locked discipline's {locked['reader_p99_ms']}ms"
        )
        assert (
            mvcc["makespan_seconds"] <= 1.10 * locked["makespan_seconds"]
        ), (
            f"mixed-workload throughput regressed beyond 10%: MVCC "
            f"makespan {mvcc['makespan_seconds']:.3f}s vs locked "
            f"{locked['makespan_seconds']:.3f}s"
        )

"""Prepared-vs-unprepared statement throughput (embedded and over the wire).

The DB-API redesign's hot-path claim: parse+compile once and bind many beats
re-parsing literal SQL per call. Three comparisons:

* embedded inserts  — distinct literal INSERT text per row (what naive
  callers do) vs one prepared statement bound per row;
* embedded selects  — distinct literal point-selects on a cache-less BDMS
  (the pre-redesign engine behavior) vs one prepared select bound per call;
* wire inserts      — ``execute`` with literal SQL vs ``prepare`` +
  ``execute_prepared`` against a live server.

Scale knob: ``BELIEFDB_BENCH_PREPARED_OPS`` (ops per arm, default 300).
"""

from __future__ import annotations

import os
import time

from repro.api import connect
from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import sightings_schema
from repro.server import BeliefServer

_RESULTS: dict[str, dict[str, float]] = {}


def _ops() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_PREPARED_OPS", "300"))


def _speedup_floor() -> float:
    """Assertion threshold for prepared/unprepared timing.

    At the default scale the prepared path must strictly win (the
    acceptance claim). At smoke scale (CI runs ~40 ops, where both arms
    take a few ms) a scheduler hiccup could flip a zero-margin comparison,
    so the assertion only guards against pathological slowdowns there.
    """
    return 1.0 if _ops() >= 200 else 2.0


def _fresh(stmt_cache_size: int = 128) -> BeliefDBMS:
    db = BeliefDBMS(
        sightings_schema(), strict=False, stmt_cache_size=stmt_cache_size
    )
    db.add_user("Carol")
    return db


def _record(name: str, unprepared: float, prepared: float, n: int) -> None:
    _RESULTS[name] = {
        "ops": n,
        "unprepared_s": unprepared,
        "prepared_s": prepared,
        "speedup": unprepared / prepared if prepared else float("inf"),
    }


def _insert_sql(i: int) -> str:
    return (
        f"insert into BELIEF 'Carol' Sightings values "
        f"('s{i}','Carol','crow','6-14-08','Lake Forest')"
    )


def test_embedded_insert_prepared_beats_literal():
    n = _ops()

    db = _fresh()
    started = time.perf_counter()
    for i in range(n):
        db.execute_sql(_insert_sql(i)).legacy()
    unprepared = time.perf_counter() - started

    cur = connect(_fresh()).cursor()
    rows = [
        ("Carol", f"s{i}", "Carol", "crow", "6-14-08", "Lake Forest")
        for i in range(n)
    ]
    started = time.perf_counter()
    cur.executemany("insert into BELIEF ? Sightings values (?,?,?,?,?)", rows)
    prepared = time.perf_counter() - started

    _record("embedded insert", unprepared, prepared, n)
    # The acceptance claim: repeated parameterized execution beats repeated
    # execute() of literal SQL on the embedded engine backend.
    assert prepared < unprepared * _speedup_floor(), (
        f"prepared {prepared:.3f}s not faster than literal {unprepared:.3f}s"
    )


def test_embedded_select_prepared_beats_uncached_literal():
    n = _ops()

    def seeded(cache: int) -> BeliefDBMS:
        db = _fresh(stmt_cache_size=cache)
        for i in range(50):
            db.insert(["Carol"], "Sightings", (f"s{i}", "Carol", "crow", "d", "l"))
        return db

    # Unprepared arm: no statement cache — every call parses and compiles,
    # exactly the pre-redesign execute() hot path.
    db = seeded(cache=0)
    started = time.perf_counter()
    for i in range(n):
        db.execute_sql(
            "select S.sid, S.species from BELIEF 'Carol' Sightings as S "
            f"where S.sid = 's{i % 50}'"
        ).legacy()
    unprepared = time.perf_counter() - started

    db = seeded(cache=128)
    stmt = db.prepare(
        "select S.sid, S.species from BELIEF ? Sightings as S where S.sid = ?"
    )
    started = time.perf_counter()
    for i in range(n):
        db.execute_prepared(stmt, ("Carol", f"s{i % 50}"))
    prepared = time.perf_counter() - started

    _record("embedded select", unprepared, prepared, n)
    assert prepared < unprepared * _speedup_floor(), (
        f"prepared {prepared:.3f}s not faster than uncached {unprepared:.3f}s"
    )


def test_wire_insert_prepared_vs_literal():
    n = _ops()

    def run(prepared_mode: bool) -> float:
        db = BeliefDBMS(sightings_schema(), strict=False)
        db.add_user("Carol")
        with BeliefServer(db) as server:
            host, port = server.address
            with connect(f"{host}:{port}") as conn:
                started = time.perf_counter()
                if prepared_mode:
                    rows = [
                        ("Carol", f"s{i}", "Carol", "crow", "6-14-08",
                         "Lake Forest")
                        for i in range(n)
                    ]
                    conn.cursor().executemany(
                        "insert into BELIEF ? Sightings values (?,?,?,?,?)",
                        rows,
                    )
                else:
                    for i in range(n):
                        conn.client.execute(_insert_sql(i))
                return time.perf_counter() - started

    unprepared = run(prepared_mode=False)
    prepared = run(prepared_mode=True)
    _record("wire insert", unprepared, prepared, n)
    # Network round-trips dominate here, so no strict assertion — the table
    # records how much of the literal-SQL overhead survives the wire.
    assert prepared > 0 and unprepared > 0


def test_prepared_report(emit, record_json):
    import pytest

    if len(_RESULTS) < 3:
        pytest.skip("run the full prepared-statement matrix first")
    record_json("prepared", {"ops": _ops(), **_RESULTS})
    ops = _ops()
    lines = [
        f"Prepared vs unprepared statement throughput ({ops} ops/arm)",
        f"{'workload':>16} {'literal s':>10} {'prepared s':>11} {'speedup':>8}",
    ]
    for name in ("embedded insert", "embedded select", "wire insert"):
        r = _RESULTS[name]
        lines.append(
            f"{name:>16} {r['unprepared_s']:>10.3f} "
            f"{r['prepared_s']:>11.3f} {r['speedup']:>7.2f}x"
        )
    emit("\n".join(lines))

"""Serialization cost: binary-v1 vs JSON, on the shapes the server serves.

Two experiments, one table:

* **Microbench** — every payload shape in ``SHAPES`` (the live request and
  response payloads of the hot wire ops, captured from real dispatch) is
  encoded and decoded through both codecs via
  :class:`repro.obs.wireprof.WireProfiler`, which doubles as the emitter
  of the ``beliefdb_wire_encode_seconds`` / ``beliefdb_wire_decode_seconds``
  histograms. Codecs are **interleaved within one run** (alternating order
  every round): this box has shown 35% run-to-run swings, so only
  within-run ratios are trustworthy.

* **End-to-end** — the 16-client blocking cell from the server-throughput
  matrix, once with every client pinned to ``wire="json"`` and once
  negotiated binary, same trace, same server core.

The small-op aggregate deliberately excludes row-matrix responses and
``execute_batch`` frames: those take the whole-frame JSON escape *by
design* (`docs/wire-protocol.md`), so their cost is JSON parity, not a
binary win. The acceptance bar (asserted at real scale only — CI smoke
rounds are fixed cost and scheduler noise) is the ISSUE 9 contract:
**≥40% reduction in encode+decode time per small op, or ≥1.3x on the
16-client blocking cell**.

Scale knobs: ``BELIEFDB_BENCH_WIRE_ROUNDS`` (microbench rounds per shape,
default 300), ``BELIEFDB_BENCH_SERVER_OPS`` (ops/client for the e2e cell,
default 60).
"""

from __future__ import annotations

import gc
import os
import threading
import time

import pytest

from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import experiment_schema
from repro.errors import BeliefDBError
from repro.obs.wireprof import WireProfiler, decode_bytes
from repro.server import BeliefClient, BeliefServer
from repro.server.binproto import BinaryCodec, JSON_CODEC
from repro.workload.generator import ConcurrentOp, concurrent_trace

E2E_CLIENTS = 16


def apply_op(client: BeliefClient, op: ConcurrentOp) -> None:
    """One trace op over the blocking client (as in test_server_throughput)."""
    if op.kind == "insert":
        client.insert(op.relation, list(op.values))
    elif op.kind == "dispute":
        client.dispute(op.relation, list(op.values))
    elif op.kind == "select":
        client.execute(op.sql)
    else:
        raise BeliefDBError(f"unknown op kind {op.kind!r}")

_SESSION = {
    "peer": "127.0.0.1:52114", "user": 3, "user_name": "Carol",
    "default_path": ["Carol"], "statements": 1, "cursors": 0,
    "transaction": False,
}
_STATUS = {
    "kind": "insert", "columns": [], "rows": [], "rowcount": 1,
    "status": "INSERT 1", "elapsed_ms": 0.41, "cursor": None,
    "has_more": False,
}
_ROW = ["s0017", "Carol", "bald eagle", "6-14-08", "Lake Forest"]
_SELECT = (
    "select S.sid, S.species from BELIEF 'Carol' Sightings as S "
    "where S.species = 'bald eagle'"
)


def _rows_result(n: int) -> dict:
    return dict(
        _STATUS, kind="select", columns=["sid", "species"],
        rows=[[f"s{i:04d}", "bald eagle"] for i in range(n)],
        rowcount=n, status=f"SELECT {n}",
    )


#: name -> (payload, in_smallop_aggregate). Shapes captured from live
#: dispatch (see docs/wire-protocol.md); ids are arbitrary but realistic.
SHAPES: dict[str, tuple[dict, bool]] = {
    "req.ping": ({"id": 7, "op": "ping", "params": {}}, True),
    "req.login": (
        {"id": 2, "op": "login", "params": {"user": "Carol", "create": True}},
        True,
    ),
    "req.insert": (
        {"id": 9, "op": "insert", "params": {
            "relation": "Sightings", "values": _ROW,
            "path": None, "sign": "+",
        }},
        True,
    ),
    "req.execute": (
        {"id": 11, "op": "execute", "params": {"sql": _SELECT}}, True,
    ),
    "req.execute_prepared": (
        {"id": 12, "op": "execute_prepared", "params": {
            "stmt": 1, "params": _ROW, "max_rows": 256,
        }},
        True,
    ),
    "req.batch16": (
        {"id": 13, "op": "execute_batch", "params": {
            "stmt": 1, "param_rows": [_ROW] * 16,
        }},
        False,  # rides the whole-frame JSON escape by design
    ),
    "resp.true": ({"id": 9, "ok": True, "result": True}, True),
    "resp.pong": ({"id": 7, "ok": True, "result": "pong"}, True),
    "resp.session": ({"id": 2, "ok": True, "result": _SESSION}, True),
    "resp.status": ({"id": 12, "ok": True, "result": _STATUS}, True),
    "resp.rows3": (
        {"id": 11, "ok": True, "result": _rows_result(3)}, False,
    ),
    "resp.rows100": (
        {"id": 11, "ok": True, "result": _rows_result(100)}, False,
    ),
    "resp.error": (
        {"id": 4, "ok": False, "error": {
            "type": "UnknownUserError", "message": "no such user 'Mallory'",
        }},
        True,
    ),
}

_MICRO: dict[str, dict[str, float]] = {}
_E2E: dict[str, float] = {}
_PROFILER = WireProfiler()


def _rounds() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_WIRE_ROUNDS", "300"))


def _ops_per_client() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_SERVER_OPS", "60"))


#: Tight-loop iterations per recorded sample. A per-call ``perf_counter``
#: pair costs about as much as encoding a small frame, so per-call timing
#: adds a constant to both codecs and dilutes the ratio being measured.
BATCH = 20


def test_codec_microbench():
    """Interleaved per-shape encode+decode timing through the profiler."""
    rounds = _rounds()
    codecs = {"json": JSON_CODEC, "binary": BinaryCodec()}
    for name, (payload, _) in SHAPES.items():
        # Correctness once per shape, outside the timed loops — and the
        # warmup (first JSON escape builds layout caches, first binary
        # encode sizes the reuse buffer) before a single sample lands.
        for codec in codecs.values():
            assert decode_bytes(codec, codec.encode(payload, None)) == payload
        gc.collect()
        gc.disable()  # as timeit does: GC pauses are not codec cost
        try:
            for r in range(rounds):
                order = (
                    ("json", "binary") if r % 2 == 0 else ("binary", "json")
                )
                for label in order:
                    codec = codecs[label]
                    start = time.perf_counter()
                    for _ in range(BATCH):
                        frame = codec.encode(payload, None)
                    mid = time.perf_counter()
                    for _ in range(BATCH):
                        codec.decode_payload(frame)
                    done = time.perf_counter()
                    _PROFILER.observe(
                        "encode", codec.name, name, (mid - start) / BATCH
                    )
                    _PROFILER.observe(
                        "decode", codec.name, name, (done - mid) / BATCH
                    )
        finally:
            gc.enable()
        row: dict[str, float] = {}
        for label, codec in codecs.items():
            enc = _PROFILER.best_seconds("encode", codec.name, name)
            dec = _PROFILER.best_seconds("decode", codec.name, name)
            row[f"{label}_us"] = 1e6 * (enc + dec)
        row["reduction_pct"] = 100.0 * (1 - row["binary_us"] / row["json_us"])
        _MICRO[name] = row
    # The histograms really did observe into the registry.
    rendered = _PROFILER.registry.render_text()
    assert "beliefdb_wire_encode_seconds" in rendered
    assert "beliefdb_wire_decode_seconds" in rendered


@pytest.mark.parametrize("wire", ("json", "binary"))
def test_e2e_blocking(wire):
    """The 16-client blocking cell, clients pinned to one codec."""
    ops_per_client = _ops_per_client()
    streams = concurrent_trace(E2E_CLIENTS, ops_per_client, seed=11)
    db = BeliefDBMS(experiment_schema(), strict=False)
    with BeliefServer(db) as server:
        barrier = threading.Barrier(E2E_CLIENTS + 1, timeout=30)
        errors: list = []

        def worker(name: str, ops) -> None:
            try:
                with BeliefClient(*server.address, wire=wire) as client:
                    client.login(name, create=True)
                    barrier.wait(timeout=30)
                    for op in ops:
                        apply_op(client, op)
            except Exception as exc:  # noqa: BLE001
                errors.append((name, exc))

        threads = [
            threading.Thread(target=worker, args=(name, ops))
            for name, ops in streams.items()
        ]
        for t in threads:
            t.start()
        barrier.wait(timeout=30)
        started = time.perf_counter()
        for t in threads:
            t.join(timeout=300)
        elapsed = time.perf_counter() - started
        assert not any(t.is_alive() for t in threads), "clients deadlocked"
        assert not errors, errors
    assert db.annotation_count() > 0
    _E2E[wire] = elapsed


def test_wire_report(emit, record_json):
    if not _MICRO or len(_E2E) < 2:
        pytest.skip("run the microbench and both e2e cells first")
    rounds = _rounds()
    ops_per_client = _ops_per_client()

    lines = [
        f"Wire codec cost (interleaved, {rounds} rounds/shape; "
        f"encode+decode µs per frame)",
        f"{'shape':>22} {'json µs':>9} {'binary µs':>10} {'reduction':>10}",
    ]
    small_json = small_binary = 0.0
    for name, row in _MICRO.items():
        in_aggregate = SHAPES[name][1]
        if in_aggregate:
            small_json += row["json_us"]
            small_binary += row["binary_us"]
        lines.append(
            f"{name:>22} {row['json_us']:>9.2f} {row['binary_us']:>10.2f} "
            f"{row['reduction_pct']:>9.1f}%"
            + ("" if in_aggregate else "   (excluded from aggregate)")
        )
    reduction = 100.0 * (1 - small_binary / small_json)
    speedup = _E2E["json"] / _E2E["binary"] if _E2E["binary"] else 1.0
    lines += [
        f"{'small-op aggregate':>22} {small_json:>9.2f} "
        f"{small_binary:>10.2f} {reduction:>9.1f}%",
        "",
        f"e2e blocking c{E2E_CLIENTS} ({ops_per_client} ops/client): "
        f"json {_E2E['json']:.3f}s, binary {_E2E['binary']:.3f}s "
        f"({speedup:.2f}x)",
    ]
    emit("\n".join(lines))

    payload: dict = {
        "rounds": rounds,
        "shapes": _MICRO,
        "smallop": {
            "json_us": small_json,
            "binary_us": small_binary,
            "reduction_pct": reduction,
        },
        "e2e": {
            "json": {f"c{E2E_CLIENTS}": {"seconds": _E2E["json"]}},
            "binary": {f"c{E2E_CLIENTS}": {"seconds": _E2E["binary"]}},
            "speedup": speedup,
        },
    }
    record_json("wire", payload)

    # The ISSUE 9 acceptance bar, at real scale only: binary cuts
    # encode+decode per small op by ≥40%, or wins the 16-client blocking
    # cell by ≥1.3x. (The e2e cell is round-trip dominated on localhost,
    # so the reduction arm is the one that normally carries this.)
    if rounds >= 200 and ops_per_client >= 40:
        assert reduction >= 40.0 or speedup >= 1.3, (
            f"binary wins neither arm: {reduction:.1f}% encode+decode "
            f"reduction (need ≥40%), {speedup:.2f}x e2e (need ≥1.3x)"
        )

"""Figure 6 (Sect. 6.1): relative overhead |R*|/n as a function of n.

The paper plots two series for 100 users with uniform participation:

* a flat depth distribution [1/3, 1/3, 1/3] whose overhead *rises* with n
  (ever more depth-2 worlds get created, each multiplying defaults) before
  flattening towards its theoretic bound;
* a skewed distribution [0.199, 0.8, 0.001] whose overhead *falls* with n
  (the world set saturates early, so the fixed per-user cost amortizes:
  O((n+m)/n · m^dmax)).

We regenerate both series on a log-spaced n sweep and assert the opposite
monotonic trends.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bench_n, bench_repeats, bench_users_large, format_table
from repro.bench.overhead import FIGURE6_SERIES, measure_overhead

_RESULTS: dict[tuple[str, int], float] = {}


def _sweep() -> list[int]:
    ns = [10, 32, 100, 316]
    top = bench_n()
    return sorted({n for n in ns if n < top} | {top})


def _cells():
    return [
        pytest.param(label, dist, n, id=f"{label.split()[0]}-n{n}")
        for label, dist in FIGURE6_SERIES.items()
        for n in _sweep()
    ]


@pytest.mark.parametrize("label, dist, n", _cells())
def test_figure6_point(benchmark, label, dist, n):
    m = bench_users_large()

    def build_point():
        return measure_overhead(
            n, m, "uniform", dist, depth_label=label,
            repeats=bench_repeats(),
        )

    result = benchmark.pedantic(build_point, rounds=1, iterations=1)
    _RESULTS[(label, n)] = result.overhead_mean
    assert result.overhead_mean > 1.0


def test_figure6_report(benchmark, emit):
    ns = _sweep()
    labels = list(FIGURE6_SERIES)

    def render() -> str:
        rows = [
            [n] + [round(_RESULTS[(label, n)], 1) for label in labels]
            for n in ns
        ]
        return format_table(
            ["n"] + labels, rows,
            title=f"Figure 6 reproduction — |R*|/n vs n "
                  f"(m={bench_users_large()}, uniform participation)",
        )

    emit(benchmark(render))

    flat_label, skewed_label = labels
    flat = [_RESULTS[(flat_label, n)] for n in ns]
    skewed = [_RESULTS[(skewed_label, n)] for n in ns]
    # Upper series: rising overall (endpoints; small-n noise tolerated).
    assert flat[-1] > flat[0]
    # Lower series: falling overall.
    assert skewed[-1] < skewed[0]
    # The two series diverge: flat ends well above skewed.
    assert flat[-1] > 2 * skewed[-1]
    # Both stay below the theoretic bound m^dmax (Sect. 5.4).
    bound = bench_users_large() ** 2
    assert max(flat + skewed) < bound

"""Curation-workload benchmark: the lifecycle subsystem under conflict.

Runs the conflict-heavy NatureMapping curation workload
(:mod:`repro.workload.curation`) two ways —

* **embedded** — straight onto a BDMS, measuring the lifecycle write path
  itself (propose/transition throughput, decay sweep latency, audit
  append cost) with zero wire overhead;
* **threaded server** — the same workload over the wire with per-racer
  client connections, so CAS races really contend across sessions the way
  racing curators do, and every loser's ``LIFECYCLE_CONFLICT`` makes a
  full round trip.

``bench_results.json`` section ``lifecycle`` feeds the CI regression gate
(``check_regression.py --only lifecycle.``). Conflict *counts* are
workload invariants (exactly one winner per contended belief) and are
asserted at any scale; timings are gated only through the baseline file's
generous regression factor.

Scale knob: ``BELIEFDB_BENCH_CURATION_BELIEFS`` (tracked beliefs,
default 24).
"""

from __future__ import annotations

import os
import time

from repro.bdms.bdms import BeliefDBMS
from repro.core.schema import sightings_schema
from repro.server import BeliefClient, BeliefServer
from repro.workload.curation import (
    CURATORS,
    ClientDriver,
    CurationConfig,
    EmbeddedDriver,
    run_curation,
)

_RESULTS: dict[str, object] = {}


def _n_beliefs() -> int:
    return int(os.environ.get("BELIEFDB_BENCH_CURATION_BELIEFS", "24"))


def _config() -> CurationConfig:
    return CurationConfig(n_beliefs=_n_beliefs(), racers=4)


def _check_invariants(stats) -> None:
    assert stats.proposed == _n_beliefs()
    assert stats.conflicts > 0, "conflict-heavy workload saw no conflicts"
    # Every successful op appends exactly one audit event — no more, no
    # less. This is the audit subsystem's core accounting invariant.
    assert stats.audit_events == (
        stats.proposed + stats.transitions + stats.sweeps
    )


def test_curation_embedded(record_json, emit):
    db = BeliefDBMS(sightings_schema(), strict=False)
    for name in CURATORS:
        db.add_user(name)
    config = _config()
    stats = run_curation(EmbeddedDriver(db), config)
    _check_invariants(stats)

    sweep_start = time.perf_counter()
    db.lifecycle_decay_sweep()
    sweep_s = time.perf_counter() - sweep_start

    _RESULTS["embedded"] = {
        "seconds": round(stats.elapsed_s, 4),
        "transitions": stats.transitions,
        "conflicts": stats.conflicts,
        "audit_events": stats.audit_events,
        "sweep_s": round(sweep_s, 5),
        "ops_per_s": round(
            (stats.proposed + stats.transitions) / stats.elapsed_s, 1
        ),
    }
    record_json("lifecycle", dict(_RESULTS))
    emit(
        "Curation workload (embedded): "
        f"{stats.proposed} proposed, {stats.transitions} transitions, "
        f"{stats.conflicts} conflicts, {stats.audit_events} audit events "
        f"in {stats.elapsed_s:.3f}s"
    )


def test_curation_threaded_server(record_json, emit):
    server = BeliefServer(
        BeliefDBMS(sightings_schema(), strict=False), port=0
    )
    server.start()
    clients: list[BeliefClient] = []

    def client_driver() -> ClientDriver:
        client = BeliefClient(*server.address)
        clients.append(client)
        return ClientDriver(client)

    try:
        main = client_driver()
        for name in CURATORS:
            main.client.login(name, create=True)
        config = _config()
        stats = run_curation(main, config, driver_factory=client_driver)
        _check_invariants(stats)
        metrics = main.client.metrics()
        conflict_total = _metric_value(
            metrics, "beliefdb_lifecycle_conflicts_total"
        )
        assert conflict_total == stats.conflicts
    finally:
        for client in clients:
            client.close()
        server.stop()

    _RESULTS["threaded"] = {
        "seconds": round(stats.elapsed_s, 4),
        "transitions": stats.transitions,
        "conflicts": stats.conflicts,
        "audit_events": stats.audit_events,
        "ops_per_s": round(
            (stats.proposed + stats.transitions) / stats.elapsed_s, 1
        ),
    }
    record_json("lifecycle", dict(_RESULTS))
    emit(
        "Curation workload (threaded server): "
        f"{stats.transitions} transitions, {stats.conflicts} conflicts "
        f"in {stats.elapsed_s:.3f}s "
        f"({_RESULTS['threaded']['ops_per_s']} lifecycle ops/s)"
    )


def _metric_value(metrics: dict, family_name: str) -> float:
    for family in metrics["families"]:
        if family["name"] == family_name:
            return sum(s["value"] for s in family["samples"])
    return 0.0
